open Hir

let type_name ty =
  if ty.signed then Printf.sprintf "sc_int<%d>" ty.width
  else Printf.sprintf "sc_uint<%d>" ty.width

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_str = function
  | Const n -> string_of_int n
  | Var n -> n
  | Arr (n, i) -> Printf.sprintf "%s[%s]" n (expr_str i)
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Un (Neg, e) -> Printf.sprintf "(-%s)" (expr_str e)
  | Un (Bnot, e) -> Printf.sprintf "(~%s)" (expr_str e)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))

type ctx = { buf : Buffer.t; mutable indent : int }

let line ctx fmt =
  Format.kasprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let indented ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let lvalue_str = function
  | Lv_var n -> n
  | Lv_arr (n, i) -> Printf.sprintf "%s[%s]" n (expr_str i)

let rec emit_stmt ctx = function
  | Assign (lv, e) -> line ctx "%s = %s;" (lvalue_str lv) (expr_str e)
  | If (cond, a, []) ->
    line ctx "if (%s) {" (expr_str cond);
    indented ctx (fun () -> List.iter (emit_stmt ctx) a);
    line ctx "}"
  | If (cond, a, b) ->
    line ctx "if (%s) {" (expr_str cond);
    indented ctx (fun () -> List.iter (emit_stmt ctx) a);
    line ctx "} else {";
    indented ctx (fun () -> List.iter (emit_stmt ctx) b);
    line ctx "}"
  | While (cond, body) ->
    line ctx "while (%s) {" (expr_str cond);
    indented ctx (fun () -> List.iter (emit_stmt ctx) body);
    line ctx "}"
  | For (iv, lo, hi, body) ->
    line ctx "for (int %s = %d; %s <= %d; ++%s) {" iv lo iv hi iv;
    indented ctx (fun () -> List.iter (emit_stmt ctx) body);
    line ctx "}"
  | Wait -> line ctx "wait();"
  | Call_p (p, args) ->
    line ctx "%s(%s);" p (String.concat ", " (List.map expr_str args))
  | Return None -> line ctx "return;"
  | Return (Some e) -> line ctx "return %s;" (expr_str e)

let emit_subprogram ctx s =
  let params =
    String.concat ", "
      (List.map (fun (n, ty) -> Printf.sprintf "%s %s" (type_name ty) n) s.s_params)
  in
  let ret = match s.s_ret with None -> "void" | Some ty -> type_name ty in
  line ctx "%s %s(%s) {" ret s.s_name params;
  indented ctx (fun () ->
      List.iter
        (fun (n, ty) -> line ctx "%s %s;" (type_name ty) n)
        s.s_locals;
      List.iter (emit_stmt ctx) s.s_body);
  line ctx "}";
  line ctx ""

let emit m =
  let ctx = { buf = Buffer.create 2048; indent = 0 } in
  line ctx "SC_MODULE(%s) {" m.m_name;
  indented ctx (fun () ->
      line ctx "sc_in_clk clk;";
      line ctx "sc_in<bool> reset;";
      List.iter
        (fun (n, dir, ty) ->
          match dir with
          | Pin -> line ctx "sc_in<%s> %s;" (type_name ty) n
          | Pout -> line ctx "sc_out<%s> %s;" (type_name ty) n)
        m.m_ports;
      line ctx "";
      List.iter (fun (n, ty) -> line ctx "%s %s;" (type_name ty) n) m.m_vars;
      List.iter
        (fun (n, ty, len) -> line ctx "%s %s[%d];" (type_name ty) n len)
        m.m_arrays;
      line ctx "";
      List.iter (emit_subprogram ctx) m.m_subprograms;
      line ctx "void main_process() {";
      indented ctx (fun () ->
          line ctx "while (true) {";
          indented ctx (fun () -> List.iter (emit_stmt ctx) m.m_body);
          line ctx "}");
      line ctx "}";
      line ctx "";
      line ctx "SC_CTOR(%s) {" m.m_name;
      indented ctx (fun () ->
          line ctx "SC_CTHREAD(main_process, clk.pos());";
          line ctx "reset_signal_is(reset, true);");
      line ctx "}");
  line ctx "};";
  Buffer.contents ctx.buf

let loc m =
  emit m |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
