(** Executable semantics for the behavioural IR and the extracted FSM.

    Both the input of FOSSY (a {!Hir.module_def}) and its intermediate
    result (a {!Fsm.t}) can be run on concrete stimuli. Input ports
    are modelled as streams: every read of an input port consumes the
    next value (the last value repeats once a stream is exhausted);
    every assignment to an output port appends to that port's output
    trace. Values wrap to their declared signed/unsigned width on
    every store, so the behavioural model, the inlined model and the
    FSM compute identically — which is exactly what the equivalence
    property tests check ("seamless refinement": synthesis must not
    change behaviour). *)

type stimulus = (string * int list) list
(** Per-input-port value streams. *)

type trace = (string * int list) list
(** Per-output-port value sequences, in write order. *)

exception Out_of_fuel
exception Runtime_error of string
(** Array index out of range, read of a never-written variable, or a
    residual call in FSM actions. *)

val wrap : Hir.ty -> int -> int
(** Value stored in a variable of the given type. *)

val run_hir :
  ?fuel:int ->
  ?max_outputs:int ->
  Hir.module_def ->
  stimulus ->
  trace
(** Executes the module body once (one pass of the implicit infinite
    process loop), or until [max_outputs] values have been produced on
    some output port. [fuel] (default 10^7) bounds the number of
    executed statements. *)

val run_fsm :
  ?fuel:int ->
  ?max_outputs:int ->
  Fsm.t ->
  stimulus ->
  trace
(** Same, on the extracted FSM: one trip until control returns to the
    entry state. *)

val output_port : trace -> string -> int list
(** The trace of one port ([[]] if it never fired). *)

val equivalent :
  ?fuel:int -> ?max_outputs:int -> Hir.module_def -> stimulus -> bool
(** Runs the module both directly and through inline+FSM extraction
    and compares the output traces. *)
