open Rtl.Vhdl

let state_label i = Printf.sprintf "s%d" i

let vtype_of_ty (ty : Hir.ty) =
  if ty.Hir.signed then Signed_v ty.Hir.width else Unsigned_v ty.Hir.width

let binop_str = function
  | Hir.Add -> "+"
  | Hir.Sub -> "-"
  | Hir.Mul -> "*"
  | Hir.Band -> "and"
  | Hir.Bor -> "or"
  | Hir.Bxor -> "xor"
  | Hir.Eq -> "="
  | Hir.Ne -> "/="
  | Hir.Lt -> "<"
  | Hir.Le -> "<="
  | Hir.Gt -> ">"
  | Hir.Ge -> ">="
  | Hir.Shl | Hir.Shr -> assert false (* rendered as shift calls *)

type env = {
  widths : (string * int) list; (* variable/port/array element widths *)
  outputs : string list;
}

let width_of env name = Option.value (List.assoc_opt name env.widths) ~default:32

let rec expr_width env = function
  | Hir.Const n ->
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    Stdlib.max 2 (bits (abs n) 0 + 1)
  | Hir.Var n -> width_of env n
  | Hir.Arr (n, _) -> width_of env n
  | Hir.Bin ((Hir.Eq | Hir.Ne | Hir.Lt | Hir.Le | Hir.Gt | Hir.Ge), _, _) -> 1
  | Hir.Bin (_, a, b) -> Stdlib.max (expr_width env a) (expr_width env b)
  | Hir.Un (_, e) -> expr_width env e
  | Hir.Call (_, args) ->
    List.fold_left (fun w a -> Stdlib.max w (expr_width env a)) 0 args

(* Translate an expression. Arithmetic on signed vectors: literals
   become to_signed(value, width) at use width; shifts by constants
   map to numeric_std shift functions. *)
let rec tr_expr env ~width e =
  match e with
  | Hir.Const n -> Call_e ("to_signed", [ Int_lit n; Int_lit width ])
  | Hir.Var n ->
    if width_of env n = width then Name n
    else Call_e ("resize", [ Name n; Int_lit width ])
  | Hir.Arr (n, i) ->
    let iw = Stdlib.max 2 (expr_width env i) in
    let idx = Call_e ("to_integer", [ tr_expr env ~width:iw i ]) in
    if width_of env n = width then Indexed (n, idx)
    else Call_e ("resize", [ Indexed (n, idx); Int_lit width ])
  | Hir.Un (Hir.Neg, e) -> Unop ("-", Paren (tr_expr env ~width e))
  | Hir.Un (Hir.Bnot, e) -> Unop ("not", Paren (tr_expr env ~width e))
  | Hir.Bin (Hir.Shl, a, Hir.Const n) ->
    Call_e ("shift_left", [ tr_expr env ~width a; Int_lit n ])
  | Hir.Bin (Hir.Shr, a, Hir.Const n) ->
    Call_e ("shift_right", [ tr_expr env ~width a; Int_lit n ])
  | Hir.Bin ((Hir.Shl | Hir.Shr) as op, a, b) ->
    let name = if op = Hir.Shl then "shift_left" else "shift_right" in
    Call_e
      ( name,
        [
          tr_expr env ~width a;
          Call_e
            ("to_integer", [ tr_expr env ~width:(Stdlib.max 2 (expr_width env b)) b ]);
        ] )
  | Hir.Bin (Hir.Mul, a, b) ->
    (* numeric_std multiplication widens; resize back to the target. *)
    let wa = expr_width env a and wb = expr_width env b in
    Call_e
      ( "resize",
        [
          Paren (Binop ("*", tr_expr env ~width:wa a, tr_expr env ~width:wb b));
          Int_lit width;
        ] )
  | Hir.Bin (op, a, b) ->
    let w = Stdlib.max width (Stdlib.max (expr_width env a) (expr_width env b)) in
    Paren (Binop (binop_str op, tr_expr env ~width:w a, tr_expr env ~width:w b))
  | Hir.Call (f, _) -> failwith ("Codegen: residual call to " ^ f)

let rec tr_cond env e =
  match e with
  | Hir.Bin ((Hir.Eq | Hir.Ne | Hir.Lt | Hir.Le | Hir.Gt | Hir.Ge), _, _)
  | Hir.Un (Hir.Bnot, _) ->
    (* Comparison yields boolean directly. *)
    (match e with
    | Hir.Bin (op, a, b) ->
      let w = Stdlib.max (expr_width env a) (expr_width env b) in
      Binop (binop_str op, tr_expr env ~width:w a, tr_expr env ~width:w b)
    | Hir.Un (Hir.Bnot, inner) ->
      Unop ("not", Paren (tr_cond env inner))
    | Hir.Const _ | Hir.Var _ | Hir.Arr _ | Hir.Un (Hir.Neg, _) | Hir.Call _ ->
      assert false)
  | Hir.Const _ | Hir.Var _ | Hir.Arr _ | Hir.Bin _ | Hir.Un (Hir.Neg, _)
  | Hir.Call _ ->
    (* Non-comparison condition: compare against zero. *)
    let w = expr_width env e in
    Binop ("/=", tr_expr env ~width:w e, Call_e ("to_signed", [ Int_lit 0; Int_lit w ]))

let tr_assign env lv e =
  match lv with
  | Hir.Lv_var n ->
    let w = width_of env n in
    let rhs = tr_expr env ~width:w e in
    if List.mem n env.outputs then Sig_assign (n, rhs) else Var_assign (n, rhs)
  | Hir.Lv_arr (n, i) ->
    let w = width_of env n in
    Idx_var_assign
      ( n,
        Call_e
          ("to_integer", [ tr_expr env ~width:(Stdlib.max 2 (expr_width env i)) i ]),
        tr_expr env ~width:w e )

let rec tr_action env = function
  | Fsm.Do (lv, e) -> [ tr_assign env lv e ]
  | Fsm.Do_if (c, a, b) ->
    [
      If_s
        ( [ (tr_cond env c, List.concat_map (tr_action env) a) ],
          List.concat_map (tr_action env) b );
    ]

let tr_next env = function
  | Fsm.Goto i -> [ Var_assign ("state", Name (state_label i)) ]
  | Fsm.Branch (c, a, b) ->
    [
      If_s
        ( [ (tr_cond env c, [ Var_assign ("state", Name (state_label a)) ]) ],
          [ Var_assign ("state", Name (state_label b)) ] );
    ]

let run (fsm : Fsm.t) =
  let env =
    {
      widths =
        List.map (fun (n, ty) -> (n, ty.Hir.width)) (fsm.Fsm.inputs @ fsm.Fsm.outputs)
        @ List.map (fun (n, ty) -> (n, ty.Hir.width)) fsm.Fsm.vars
        @ List.map (fun (n, ty, _) -> (n, ty.Hir.width)) fsm.Fsm.arrays;
      outputs = List.map fst fsm.Fsm.outputs;
    }
  in
  let n_states = Array.length fsm.Fsm.states in
  let state_type_name = fsm.Fsm.fsm_name ^ "_state_t" in
  let entity =
    {
      ent_name = fsm.Fsm.fsm_name;
      ports =
        [
          { port_name = "clk"; dir = In; ptype = Std_logic };
          { port_name = "reset"; dir = In; ptype = Std_logic };
        ]
        @ List.map
            (fun (n, ty) -> { port_name = n; dir = In; ptype = vtype_of_ty ty })
            fsm.Fsm.inputs
        @ List.map
            (fun (n, ty) -> { port_name = n; dir = Out; ptype = vtype_of_ty ty })
            fsm.Fsm.outputs;
    }
  in
  let array_type_name n = n ^ "_array_t" in
  let arch_decls =
    Enum_d (state_type_name, List.init n_states state_label)
    :: List.map
         (fun (n, ty, len) -> Array_d (array_type_name n, len, vtype_of_ty ty))
         fsm.Fsm.arrays
  in
  let proc_vars =
    Variable_d ("state", Enum_ref state_type_name, Some (Name (state_label fsm.Fsm.entry)))
    :: List.map (fun (n, ty) -> Variable_d (n, vtype_of_ty ty, None)) fsm.Fsm.vars
    @ List.map
        (fun (n, _, _) -> Variable_d (n, Array_ref (array_type_name n), None))
        fsm.Fsm.arrays
  in
  let reset_actions =
    Var_assign ("state", Name (state_label fsm.Fsm.entry))
    :: List.map
         (fun (n, ty) ->
           Var_assign (n, Call_e ("to_signed", [ Int_lit 0; Int_lit ty.Hir.width ])))
         fsm.Fsm.vars
    @ List.map
        (fun (n, ty) ->
          Sig_assign (n, Call_e ("to_signed", [ Int_lit 0; Int_lit ty.Hir.width ])))
        fsm.Fsm.outputs
  in
  let state_case =
    Case_s
      ( Name "state",
        Array.to_list
          (Array.mapi
             (fun i st ->
               ( state_label i,
                 Comment (Printf.sprintf "state %d" i)
                 :: List.concat_map (tr_action env) st.Fsm.actions
                 @ tr_next env st.Fsm.next ))
             fsm.Fsm.states) )
  in
  let body =
    [
      If_s
        ( [
            (Binop ("=", Name "reset", Bit_lit '1'), reset_actions);
            (Call_e ("rising_edge", [ Name "clk" ]), [ state_case ]);
          ],
          [] );
    ]
  in
  let process = clocked_process ~name:(fsm.Fsm.fsm_name ^ "_fsm") ~decls:proc_vars body in
  {
    entity;
    architecture =
      { arch_name = "fossy"; arch_decls; processes = [ process ] };
  }
