(** Platform-description generation (EDK MHS / MSS files).

    The last step of the synthesis flow: from the validated VTA
    mapping, generate the Microprocessor Hardware Specification
    (processors, buses, memory controllers, FOSSY-generated cores and
    their bus attachments) and the Microprocessor Software
    Specification (OS and driver setup per processor) that an EDK
    project is created from. *)

val mhs : Osss.Vta.t -> hw_cores:string list -> string
(** Raises [Invalid_argument] if the mapping does not validate. *)

val mss : Osss.Vta.t -> string
