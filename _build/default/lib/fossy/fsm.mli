(** FSM extraction.

    Cuts the (inlined) behavioural process into an explicit state
    machine at the [Wait] boundaries: all statements between two
    consecutive waits become one state's combinational action block;
    control flow that crosses a wait becomes next-state logic.
    [For] loops without waits are fully unrolled; loops containing
    waits become clocked loops with a header state. The main process
    loops forever (last state jumps back to the entry), matching the
    SC_CTHREAD semantics of the source. *)

type action =
  | Do of Hir.lvalue * Hir.expr
  | Do_if of Hir.expr * action list * action list

type next =
  | Goto of int
  | Branch of Hir.expr * int * int  (** condition, then-state, else-state *)

type state = { actions : action list; next : next }

type t = {
  fsm_name : string;
  inputs : (string * Hir.ty) list;
  outputs : (string * Hir.ty) list;
  vars : (string * Hir.ty) list;
  arrays : (string * Hir.ty * int) list;
  states : state array;
  entry : int;
}

val of_module : Hir.module_def -> t
(** Raises [Failure] if the module still contains subprogram calls
    (run {!Inline.run} first), has a wait-free [While], or unrolls a
    [For] beyond 256 iterations. *)

val state_count : t -> int

val reachable_states : t -> bool array
(** Which states are reachable from the entry — the well-formedness
    property the tests check. *)
