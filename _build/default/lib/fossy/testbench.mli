(** VHDL testbench generation.

    For a synthesised core, FOSSY emits a self-checking testbench
    skeleton: clock and reset generation, a stimulus process driving
    the input ports from constant arrays (one value per clock, in the
    order the behavioural model consumes them), and a monitor that
    logs every change of the output ports next to the reference
    output stream computed by executing the behavioural model with
    {!Interp}. The reference stream is embedded as a VHDL constant so
    an RTL simulation can be diffed against the high-level model. *)

val generate :
  Fsm.t ->
  stimulus:Interp.stimulus ->
  reference:Interp.trace ->
  ?clock_ns:int ->
  unit ->
  string
(** The testbench entity [<core>_tb]. [clock_ns] is the clock period
    (default 10 ns = 100 MHz). *)

val generate_for_module :
  Hir.module_def ->
  stimulus:Interp.stimulus ->
  ?max_outputs:int ->
  ?clock_ns:int ->
  unit ->
  (string, string list) result
(** Convenience driver: validate → inline → FSM → run the interpreter
    for the reference trace → generate. *)
