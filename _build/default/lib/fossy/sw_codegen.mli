(** Software-side code generation.

    For every Software Task of the VTA model, FOSSY generates the C
    wrapper that the cross-compiler links against the OSSS embedded
    library: the task entry point, the RMI stubs used to reach the
    HW/SW Shared Objects over the bus driver, and the EET
    instrumentation hooks. The algorithmic body itself is the user's
    C/C++ (it is referenced by include), matching the paper's flow
    where SW tasks are compiled by gcc and linked against the OSSS
    embedded library. *)

type method_stub = {
  stub_name : string;
  args_words : int;  (** serialised argument size *)
  ret_words : int;
}

type task_spec = {
  task_name : string;
  processor : string;
  shared_objects : (string * method_stub list) list;
  body_include : string;  (** header with the algorithmic entry point *)
}

val emit_c : task_spec -> string
(** The generated C translation unit. *)

val loc : task_spec -> int
