type slot = {
  mutable decoded : Jpeg2000.Decoder.entropy_decoded option;
  mutable wavelet : Jpeg2000.Decoder.wavelet_domain option;
  mutable spatial : Jpeg2000.Decoder.wavelet_domain option;
  mutable finished : Jpeg2000.Tile.t option;
  mutable stage_reached : int;
}

type payload = {
  header : Jpeg2000.Codestream.header;
  segments : Jpeg2000.Codestream.tile_segment array;
  reference : Jpeg2000.Image.t;
  slots : slot array;
}

type t = { w_mode : Profile.mode; w_tiles : int; payload : payload option }

let make_payload mode =
  let image =
    Jpeg2000.Image.smooth ~width:128 ~height:128 ~components:Profile.components
      ~seed:2008
  in
  let config =
    {
      Jpeg2000.Encoder.tile_w = 32;
      tile_h = 32;
      levels = 3;
      mode;
      base_step = 2.0;
      code_block = 16;
    }
  in
  let data = Jpeg2000.Encoder.encode config image in
  let stream = Jpeg2000.Codestream.parse data in
  let reference = Jpeg2000.Decoder.decode data in
  let segments = Array.of_list stream.Jpeg2000.Codestream.tiles in
  let slots =
    Array.map
      (fun _ ->
        {
          decoded = None;
          wavelet = None;
          spatial = None;
          finished = None;
          stage_reached = 0;
        })
      segments
  in
  { header = stream.Jpeg2000.Codestream.header; segments; reference; slots }

let make ?(payload = true) mode =
  {
    w_mode = mode;
    w_tiles = Profile.tiles;
    payload = (if payload then Some (make_payload mode) else None);
  }

let mode t = t.w_mode
let tile_count t = t.w_tiles
let has_payload t = t.payload <> None

let expect_stage p i expected =
  let slot = p.slots.(i) in
  if slot.stage_reached <> expected then
    failwith
      (Printf.sprintf "Workload: tile %d reached stage %d, expected %d" i
         slot.stage_reached expected);
  slot.stage_reached <- expected + 1

let stage_decode t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 0;
    p.slots.(i).decoded <-
      Some (Jpeg2000.Decoder.entropy_decode_tile p.header p.segments.(i))

let stage_iq t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 1;
    (match p.slots.(i).decoded with
    | Some ed -> p.slots.(i).wavelet <- Some (Jpeg2000.Decoder.dequantise p.header ed)
    | None -> failwith "Workload: IQ before decode")

let stage_idwt t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 2;
    (match p.slots.(i).wavelet with
    | Some wd ->
      p.slots.(i).spatial <- Some (Jpeg2000.Decoder.inverse_wavelet p.header wd)
    | None -> failwith "Workload: IDWT before IQ")

let stage_ict_dc t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 3;
    (match p.slots.(i).spatial with
    | Some wd ->
      p.slots.(i).finished <-
        Some (Jpeg2000.Decoder.inverse_colour_and_shift p.header p.segments.(i) wd)
    | None -> failwith "Workload: ICT before IDWT")

let tile_payload_words t i =
  match t.payload with
  | None -> 0
  | Some p ->
    (* The entropy-decoded coefficients of the reduced tile: one word
       per sample per component. *)
    let seg = p.segments.(i) in
    seg.Jpeg2000.Codestream.tile_w * seg.Jpeg2000.Codestream.tile_h
    * Array.length seg.Jpeg2000.Codestream.comps

let check t =
  match t.payload with
  | None -> None
  | Some p ->
    let all_done = Array.for_all (fun s -> s.finished <> None) p.slots in
    if not all_done then Some false
    else begin
      let tiles =
        Array.to_list (Array.map (fun s -> Option.get s.finished) p.slots)
      in
      let image =
        Jpeg2000.Tile.assemble
          ~width:(Jpeg2000.Image.width p.reference)
          ~height:(Jpeg2000.Image.height p.reference)
          ~components:(Jpeg2000.Image.components p.reference)
          tiles
      in
      Some (Jpeg2000.Image.equal image p.reference)
    end
