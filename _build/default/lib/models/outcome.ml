type t = {
  version : string;
  mode : Profile.mode;
  decode_ms : float;
  idwt_ms : float;
  idwt_calls : int;
  functional_ok : bool option;
}

let speedup_vs baseline r = baseline.decode_ms /. r.decode_ms
let idwt_speedup_vs baseline r = baseline.idwt_ms /. r.idwt_ms

let pp fmt r =
  Format.fprintf fmt "v%s %a: decode %.1f ms, IDWT %.1f ms%s" r.version
    Jpeg2000.Codestream.pp_mode r.mode r.decode_ms r.idwt_ms
    (match r.functional_ok with
    | None -> ""
    | Some true -> " [functionally correct]"
    | Some false -> " [FUNCTIONAL MISMATCH]")
