open Fossy.Hir

let line_buffer_length = 32

(* Datapath parallelism: 4 coefficients per clock, as a realistic
   line-based lifting engine would stream them. *)
let lanes = 4
let blocks = line_buffer_length / lanes

let coeff = int_ty 16
let wide = int_ty 18 (* lifting intermediates carry two guard bits *)
let flag = uint_ty 1

(* index expression: base*lanes + lane *)
let idx ib lane = Bin (Add, Bin (Shl, v ib, c 2), c lane)

(* -- shared skeleton -------------------------------------------------

   Both cores process a tile as [rows] horizontal line passes followed
   by the same number of vertical passes, the direction being handled
   by the address generator (kept abstract here: the line buffers are
   loaded and drained through the streaming ports). *)

let load_loops =
  [
    For
      ( "li",
        0,
        blocks - 1,
        List.init lanes (fun lane -> assign_arr "low" (idx "li" lane) (v "data_in"))
        @ [ Wait ] );
    For
      ( "li",
        0,
        blocks - 1,
        List.init lanes (fun lane -> assign_arr "high" (idx "li" lane) (v "data_in"))
        @ [ Wait ] );
  ]

let drain_loop =
  [
    For
      ( "oi",
        0,
        (2 * line_buffer_length) - 1,
        [
          assign "out_word" (Arr ("line", v "oi"));
          assign "data_out" (v "out_word");
          Wait;
        ] );
  ]

let wait_for_start =
  [
    assign "done_flag" (c 0);
    assign "done_port" (v "done_flag");
    While (Bin (Eq, v "start", c 0), [ Wait ]);
  ]

let finish_frame = [ assign "done_flag" (c 1); assign "done_port" (v "done_flag"); Wait ]

(* -- IDWT 5/3 ------------------------------------------------------- *)

(* Reconstruction (ISO F.3.8.2, reversible):
   even: x(2i)   = s(i) - floor((d(i-1) + d(i) + 2) / 4)
   odd:  x(2i+1) = d(i) + floor((x(2i) + x(2i+2)) / 2)        *)

let idwt53_subprograms =
  [
    {
      s_name = "update_even";
      s_params = [ ("s_c", coeff); ("d_prev", coeff); ("d_cur", coeff) ];
      s_ret = Some coeff;
      s_locals = [ ("sum", wide) ];
      s_body =
        [
          assign "sum" (v "d_prev" +: v "d_cur" +: c 2);
          Return (Some (v "s_c" -: (v "sum" >>: 2)));
        ];
    };
    {
      s_name = "predict_odd";
      s_params = [ ("d_c", coeff); ("e_prev", coeff); ("e_next", coeff) ];
      s_ret = Some coeff;
      s_locals = [ ("sum", wide) ];
      s_body =
        [
          assign "sum" (v "e_prev" +: v "e_next");
          Return (Some (v "d_c" +: (v "sum" >>: 1)));
        ];
    };
    {
      s_name = "process_line_53";
      s_params = [ ("dir", flag) ];
      s_ret = None;
      s_locals = [ ("d_prev", coeff); ("e_next", coeff) ];
      s_body =
        load_loops
        @ [
            (* Even samples, 4 lanes per cycle. *)
            For
              ( "ei",
                0,
                blocks - 1,
                List.concat_map
                  (fun lane ->
                    let cur = idx "ei" lane in
                    let boundary =
                      if lane = 0 then
                        [
                          If
                            ( Bin (Eq, v "ei", c 0),
                              [ assign "d_prev" (Arr ("high", c 0)) ],
                              [
                                assign "d_prev"
                                  (Arr ("high", Bin (Sub, cur, c 1)));
                              ] );
                        ]
                      else
                        [ assign "d_prev" (Arr ("high", Bin (Sub, cur, c 1))) ]
                    in
                    boundary
                    @ [
                        assign_arr "line"
                          (Bin (Shl, cur, c 1))
                          (Call
                             ( "update_even",
                               [ Arr ("low", cur); v "d_prev"; Arr ("high", cur) ]
                             ));
                      ])
                  [ 0; 1; 2; 3 ]
                @ [ Wait ] );
            (* Odd samples. *)
            For
              ( "oi2",
                0,
                blocks - 1,
                List.concat_map
                  (fun lane ->
                    let cur = idx "oi2" lane in
                    let even_at e = Arr ("line", e) in
                    let boundary =
                      if lane = lanes - 1 then
                        [
                          If
                            ( Bin (Eq, v "oi2", c (blocks - 1)),
                              [ assign "e_next" (even_at (Bin (Shl, cur, c 1))) ],
                              [
                                assign "e_next"
                                  (even_at
                                     (Bin (Add, Bin (Shl, cur, c 1), c 2)));
                              ] );
                        ]
                      else
                        [
                          assign "e_next"
                            (even_at (Bin (Add, Bin (Shl, cur, c 1), c 2)));
                        ]
                    in
                    boundary
                    @ [
                        assign_arr "line"
                          (Bin (Add, Bin (Shl, cur, c 1), c 1))
                          (Call
                             ( "predict_odd",
                               [
                                 Arr ("high", cur);
                                 even_at (Bin (Shl, cur, c 1));
                                 v "e_next";
                               ] ));
                      ])
                  [ 0; 1; 2; 3 ]
                @ [ Wait ] );
          ]
        @ drain_loop;
    };
  ]

let idwt53_systemc =
  {
    m_name = "idwt53";
    m_ports =
      [
        ("start", Pin, flag);
        ("data_in", Pin, coeff);
        ("data_out", Pout, coeff);
        ("done_port", Pout, flag);
      ];
    m_vars = [ ("done_flag", flag); ("out_word", coeff) ];
    m_arrays =
      [
        ("low", coeff, line_buffer_length);
        ("high", coeff, line_buffer_length);
        ("line", coeff, 2 * line_buffer_length);
      ];
    m_subprograms = idwt53_subprograms;
    m_body =
      wait_for_start
      @ [
          For ("row", 0, 127, [ Call_p ("process_line_53", [ c 0 ]); Wait ]);
          For ("col", 0, 127, [ Call_p ("process_line_53", [ c 1 ]); Wait ]);
        ]
      @ finish_frame;
  }

(* -- IDWT 9/7 ------------------------------------------------------- *)

(* Daubechies (9,7) inverse lifting in 13-bit fixed point:
   -alpha = 12994/8192, -beta = 434/8192, -gamma = 7233/8192,
   -delta = 3633/8192; K and 1/K as 10079/8192 and 6659/8192. *)
let q_alpha = 12994
let q_beta = 434
let q_gamma = 7233
let q_delta = 3633
let q_k = 10079
let q_inv_k = 6659

let idwt97_lift_subprogram ~name =
  {
    s_name = name;
    s_params =
      [ ("base", coeff); ("n_prev", coeff); ("n_next", coeff); ("coef_q", wide) ];
    s_ret = Some coeff;
    s_locals = [ ("acc", int_ty 36) ];
    s_body =
      [
        assign "acc" (Bin (Mul, v "coef_q", v "n_prev" +: v "n_next"));
        Return (Some (v "base" +: ((v "acc" +: c 4096) >>: 13)));
      ];
  }

let idwt97_scale_subprogram =
  {
    s_name = "scale_97";
    s_params = [ ("value", coeff); ("factor_q", wide) ];
    s_ret = Some coeff;
    s_locals = [ ("prod", int_ty 36) ];
    s_body =
      [
        assign "prod" (Bin (Mul, v "value", v "factor_q"));
        Return (Some ((v "prod" +: c 4096) >>: 13));
      ];
  }

(* One lifting sweep over the interleaved line buffer: for every
   index of the given parity, base += coef * (neighbours). *)
let lift_loop ~loop_var ~parity ~coef_q =
  let pos = Bin (Add, Bin (Shl, idx loop_var 0, c 1), c parity) in
  ignore pos;
  For
    ( loop_var,
      0,
      blocks - 1,
      List.concat_map
        (fun lane ->
          let p = Bin (Add, Bin (Shl, idx loop_var lane, c 1), c parity) in
          let prev = Bin (Sub, p, c 1) in
          let next = Bin (Add, p, c 1) in
          let guard_lo = parity = 0 && lane = 0 in
          let guard_hi = parity = 1 && lane = lanes - 1 in
          let neighbour_prev =
            if guard_lo then
              [
                If
                  ( Bin (Eq, v loop_var, c 0),
                    [ assign "n_prev" (Arr ("line", next)) ],
                    [ assign "n_prev" (Arr ("line", prev)) ] );
              ]
            else [ assign "n_prev" (Arr ("line", prev)) ]
          in
          let neighbour_next =
            if guard_hi then
              [
                If
                  ( Bin (Eq, v loop_var, c (blocks - 1)),
                    [ assign "n_next" (Arr ("line", prev)) ],
                    [ assign "n_next" (Arr ("line", next)) ] );
              ]
            else [ assign "n_next" (Arr ("line", next)) ]
          in
          neighbour_prev @ neighbour_next
          @ [
              assign_arr "line" p
                (Call
                   ( "lift_97",
                     [ Arr ("line", p); v "n_prev"; v "n_next"; c coef_q ] ));
            ])
        [ 0; 1; 2; 3 ]
      @ [ Wait ] )

let idwt97_process_line =
  {
    s_name = "process_line_97";
    s_params = [ ("dir", flag) ];
    s_ret = None;
    s_locals = [ ("n_prev", coeff); ("n_next", coeff) ];
    s_body =
      load_loops
      @ [
          (* Undo the K scaling while interleaving into the line buffer. *)
          For
            ( "si",
              0,
              blocks - 1,
              List.concat_map
                (fun lane ->
                  let cur = idx "si" lane in
                  [
                    assign_arr "line"
                      (Bin (Shl, cur, c 1))
                      (Call ("scale_97", [ Arr ("low", cur); c q_k ]));
                    assign_arr "line"
                      (Bin (Add, Bin (Shl, cur, c 1), c 1))
                      (Call ("scale_97", [ Arr ("high", cur); c q_inv_k ]));
                  ])
                [ 0; 1; 2; 3 ]
              @ [ Wait ] );
          (* Four inverse lifting sweeps: -delta, -gamma, -beta, -alpha. *)
          lift_loop ~loop_var:"l1" ~parity:0 ~coef_q:(-q_delta);
          lift_loop ~loop_var:"l2" ~parity:1 ~coef_q:(-q_gamma);
          (* alpha and beta are themselves negative, so undoing them
             adds the positive fixed-point constants. *)
          lift_loop ~loop_var:"l3" ~parity:0 ~coef_q:q_beta;
          lift_loop ~loop_var:"l4" ~parity:1 ~coef_q:q_alpha;
        ]
      @ drain_loop;
  }

let idwt97_systemc =
  {
    m_name = "idwt97";
    m_ports =
      [
        ("start", Pin, flag);
        ("data_in", Pin, coeff);
        ("data_out", Pout, coeff);
        ("done_port", Pout, flag);
      ];
    m_vars = [ ("done_flag", flag); ("out_word", coeff) ];
    m_arrays =
      [
        ("low", coeff, line_buffer_length);
        ("high", coeff, line_buffer_length);
        ("line", coeff, 2 * line_buffer_length);
      ];
    m_subprograms =
      [ idwt97_lift_subprogram ~name:"lift_97"; idwt97_scale_subprogram;
        idwt97_process_line ];
    m_body =
      wait_for_start
      @ [
          For ("row", 0, 127, [ Call_p ("process_line_97", [ c 0 ]); Wait ]);
          For ("col", 0, 127, [ Call_p ("process_line_97", [ c 1 ]); Wait ]);
        ]
      @ finish_frame;
  }

(* -- hand-crafted reference designs ----------------------------------

   Classic two-process style: a small control FSM plus a datapath
   process; the filter arithmetic stays in VHDL functions; the
   4-lane datapath instantiates its operators side by side (no
   cross-state sharing — which is what the Flat area estimate
   models). *)

open Rtl.Vhdl

let signed16 = Signed_v 16
let signed18 = Signed_v 18

let ref_common_types =
  [
    Enum_d
      ( "state_t",
        [ "st_idle"; "st_load_low"; "st_load_high"; "st_even"; "st_odd";
          "st_lift"; "st_drain"; "st_next_line"; "st_done" ] );
    Array_d ("buf_t", line_buffer_length, signed16);
    Array_d ("line_t", 2 * line_buffer_length, signed16);
  ]

let ref_common_signals =
  [
    Signal_d ("state", Enum_ref "state_t", Some (Name "st_idle"));
    Signal_d ("low_buf", Array_ref "buf_t", None);
    Signal_d ("high_buf", Array_ref "buf_t", None);
    Signal_d ("line_buf", Array_ref "line_t", None);
    Signal_d ("i", Integer_range (0, 255), Some (Int_lit 0));
    Signal_d ("row", Integer_range (0, 255), Some (Int_lit 0));
    Signal_d ("dir", Std_logic, Some (Bit_lit '0'));
    Signal_d ("phase", Integer_range (0, 7), Some (Int_lit 0));
  ]

let ref_ports =
  [
    { port_name = "clk"; dir = In; ptype = Std_logic };
    { port_name = "reset"; dir = In; ptype = Std_logic };
    { port_name = "start"; dir = In; ptype = Std_logic };
    { port_name = "data_in"; dir = In; ptype = signed16 };
    { port_name = "data_out"; dir = Out; ptype = signed16 };
    { port_name = "done_port"; dir = Out; ptype = Std_logic };
  ]

(* Shared control FSM: counters and state transitions only. *)
let ref_control_process ~lift_phases =
  let next_counter limit next_state =
    [
      If_s
        ( [
            ( Binop ("=", Name "i", Int_lit (limit - 1)),
              [ Sig_assign ("i", Int_lit 0); Sig_assign ("state", Name next_state) ]
            );
          ],
          [ Sig_assign ("i", Binop ("+", Name "i", Int_lit 1)) ] );
    ]
  in
  let lift_transition =
    if lift_phases = 0 then
      (* 5/3: even then odd pass. *)
      [
        ("st_even", next_counter blocks "st_odd");
        ("st_odd", next_counter blocks "st_drain");
      ]
    else
      (* 9/7: scaling pass then [lift_phases] lifting sweeps. *)
      [
        ("st_even", next_counter blocks "st_lift");
        ( "st_lift",
          [
            If_s
              ( [
                  ( Binop ("=", Name "i", Int_lit (blocks - 1)),
                    [
                      Sig_assign ("i", Int_lit 0);
                      If_s
                        ( [
                            ( Binop ("=", Name "phase", Int_lit (lift_phases - 1)),
                              [
                                Sig_assign ("phase", Int_lit 0);
                                Sig_assign ("state", Name "st_drain");
                              ] );
                          ],
                          [
                            Sig_assign
                              ("phase", Binop ("+", Name "phase", Int_lit 1));
                          ] );
                    ] );
                ],
                [ Sig_assign ("i", Binop ("+", Name "i", Int_lit 1)) ] );
          ] );
        ("st_odd", [ Sig_assign ("state", Name "st_drain") ]);
      ]
  in
  clocked_process ~name:"control"
    [
      If_s
        ( [
            ( Binop ("=", Name "reset", Bit_lit '1'),
              [
                Sig_assign ("state", Name "st_idle");
                Sig_assign ("i", Int_lit 0);
                Sig_assign ("row", Int_lit 0);
                Sig_assign ("phase", Int_lit 0);
                Sig_assign ("done_port", Bit_lit '0');
              ] );
            ( Call_e ("rising_edge", [ Name "clk" ]),
              [
                Case_s
                  ( Name "state",
                    [
                      ( "st_idle",
                        [
                          Sig_assign ("done_port", Bit_lit '0');
                          If_s
                            ( [
                                ( Binop ("=", Name "start", Bit_lit '1'),
                                  [ Sig_assign ("state", Name "st_load_low") ] );
                              ],
                              [] );
                        ] );
                      ("st_load_low", next_counter blocks "st_load_high");
                      ("st_load_high", next_counter blocks "st_even");
                    ]
                    @ lift_transition
                    @ [
                        ("st_drain", next_counter (2 * blocks) "st_next_line");
                        ( "st_next_line",
                          [
                            If_s
                              ( [
                                  ( Binop ("=", Name "row", Int_lit 255),
                                    [
                                      Sig_assign ("row", Int_lit 0);
                                      Sig_assign ("state", Name "st_done");
                                    ] );
                                ],
                                [
                                  Sig_assign
                                    ("row", Binop ("+", Name "row", Int_lit 1));
                                  Sig_assign ("state", Name "st_load_low");
                                ] );
                          ] );
                        ( "st_done",
                          [
                            Sig_assign ("done_port", Bit_lit '1');
                            Sig_assign ("state", Name "st_idle");
                          ] );
                      ] );
              ] );
          ],
          [] );
    ]

let lane_index lane = Binop ("+", Call_e ("to_integer", [ Name "i" ]), Int_lit lane)

(* The 5/3 datapath: loads, the two reconstruction passes (4 lanes in
   parallel, calling the VHDL filter functions), and the drain. *)
let ref53_datapath =
  let even_lane lane =
    Idx_sig_assign
      ( "line_buf",
        Binop ("*", Paren (lane_index lane), Int_lit 2),
        Call_e
          ( "f_update_even",
            [
              Indexed ("low_buf", lane_index lane);
              Indexed ("high_buf", Binop ("-", lane_index lane, Int_lit 1));
              Indexed ("high_buf", lane_index lane);
            ] ) )
  in
  let odd_lane lane =
    Idx_sig_assign
      ( "line_buf",
        Binop ("+", Paren (Binop ("*", Paren (lane_index lane), Int_lit 2)), Int_lit 1),
        Call_e
          ( "f_predict_odd",
            [
              Indexed ("high_buf", lane_index lane);
              Indexed ("line_buf", Binop ("*", Paren (lane_index lane), Int_lit 2));
              Indexed
                ( "line_buf",
                  Binop ("+", Paren (Binop ("*", Paren (lane_index lane), Int_lit 2)), Int_lit 2)
                );
            ] ) )
  in
  clocked_process ~name:"datapath"
    [
      If_s
        ( [
            ( Call_e ("rising_edge", [ Name "clk" ]),
              [
                Case_s
                  ( Name "state",
                    [
                      ("st_idle", []);
                      ( "st_load_low",
                        List.init lanes (fun lane ->
                            Idx_sig_assign ("low_buf", lane_index lane, Name "data_in"))
                      );
                      ( "st_load_high",
                        List.init lanes (fun lane ->
                            Idx_sig_assign ("high_buf", lane_index lane, Name "data_in"))
                      );
                      ("st_even", List.init lanes even_lane);
                      ("st_odd", List.init lanes odd_lane);
                      ("st_lift", []);
                      ( "st_drain",
                        [
                          Sig_assign
                            ( "data_out",
                              Indexed
                                ( "line_buf",
                                  Binop
                                    ( "*",
                                      Call_e ("to_integer", [ Name "i" ]),
                                      Int_lit 2 ) ) );
                        ] );
                      ("st_next_line", []);
                      ("st_done", []);
                    ] );
              ] );
          ],
          [] );
    ]

let ref53_functions =
  [
    Function_d
      {
        f_name = "f_update_even";
        f_params = [ ("s_c", signed16); ("d_prev", signed16); ("d_cur", signed16) ];
        f_ret = signed16;
        f_decls = [ Variable_d ("sum", signed18, None) ];
        f_body =
          [
            Var_assign
              ( "sum",
                Binop
                  ( "+",
                    Binop ("+", Call_e ("resize", [ Name "d_prev"; Int_lit 18 ]), Name "d_cur"),
                    Int_lit 2 ) );
            Return_s
              (Call_e
                 ( "resize",
                   [
                     Binop ("-", Name "s_c", Call_e ("shift_right", [ Name "sum"; Int_lit 2 ]));
                     Int_lit 16;
                   ] ));
          ];
      };
    Function_d
      {
        f_name = "f_predict_odd";
        f_params = [ ("d_c", signed16); ("e_prev", signed16); ("e_next", signed16) ];
        f_ret = signed16;
        f_decls = [ Variable_d ("sum", signed18, None) ];
        f_body =
          [
            Var_assign
              ("sum", Binop ("+", Call_e ("resize", [ Name "e_prev"; Int_lit 18 ]), Name "e_next"));
            Return_s
              (Call_e
                 ( "resize",
                   [
                     Binop ("+", Name "d_c", Call_e ("shift_right", [ Name "sum"; Int_lit 1 ]));
                     Int_lit 16;
                   ] ));
          ];
      };
  ]

let idwt53_reference =
  {
    entity = { ent_name = "idwt53_ref"; ports = ref_ports };
    architecture =
      {
        arch_name = "rtl";
        arch_decls = ref_common_types @ ref53_functions @ ref_common_signals;
        processes = [ ref_control_process ~lift_phases:0; ref53_datapath ];
      };
  }

(* The 9/7 datapath: K scaling on load interleave, then one lifting
   sweep per phase. The hand-crafted design spends area for speed:
   eight lanes of dedicated multipliers, twice the behavioural
   model's parallelism (the classic hand-RTL trade-off the paper's
   reference embodies). *)
let ref97_functions =
  [
    Function_d
      {
        f_name = "f_lift";
        f_params =
          [ ("base", signed16); ("n_prev", signed16); ("n_next", signed16);
            ("coef_q", signed18) ];
        f_ret = signed16;
        f_decls = [ Variable_d ("acc", Signed_v 36, None) ];
        f_body =
          [
            Var_assign
              ( "acc",
                Binop
                  ( "*",
                    Name "coef_q",
                    Paren (Binop ("+", Call_e ("resize", [ Name "n_prev"; Int_lit 18 ]), Name "n_next"))
                  ) );
            Return_s
              (Call_e
                 ( "resize",
                   [
                     Binop
                       ( "+",
                         Name "base",
                         Call_e
                           ( "shift_right",
                             [ Binop ("+", Name "acc", Int_lit 4096); Int_lit 13 ] ) );
                     Int_lit 16;
                   ] ));
          ];
      };
    Function_d
      {
        f_name = "f_scale";
        f_params = [ ("value", signed16); ("factor_q", signed18) ];
        f_ret = signed16;
        f_decls = [ Variable_d ("prod", Signed_v 36, None) ];
        f_body =
          [
            Var_assign ("prod", Binop ("*", Name "value", Name "factor_q"));
            Return_s
              (Call_e
                 ( "resize",
                   [
                     Call_e
                       ( "shift_right",
                         [ Binop ("+", Name "prod", Int_lit 4096); Int_lit 13 ] );
                     Int_lit 16;
                   ] ));
          ];
      };
  ]

let ref97_datapath =
  let scale_lane lane =
    [
      Idx_sig_assign
        ( "line_buf",
          Binop ("*", Paren (lane_index lane), Int_lit 2),
          Call_e ("f_scale", [ Indexed ("low_buf", lane_index lane); Name "c_k" ]) );
      Idx_sig_assign
        ( "line_buf",
          Binop ("+", Paren (Binop ("*", Paren (lane_index lane), Int_lit 2)), Int_lit 1),
          Call_e
            ("f_scale", [ Indexed ("high_buf", lane_index lane); Name "c_inv_k" ]) );
    ]
  in
  let lift_lane lane =
    let pos = Binop ("+", Binop ("*", Paren (lane_index lane), Int_lit 2), Name "parity") in
    Idx_sig_assign
      ( "line_buf",
        pos,
        Call_e
          ( "f_lift",
            [
              Indexed ("line_buf", pos);
              Indexed ("line_buf", Binop ("-", pos, Int_lit 1));
              Indexed ("line_buf", Binop ("+", pos, Int_lit 1));
              Name "coef_q";
            ] ) )
  in
  clocked_process ~name:"datapath"
    [
      If_s
        ( [
            ( Call_e ("rising_edge", [ Name "clk" ]),
              [
                Case_s
                  ( Name "state",
                    [
                      ("st_idle", []);
                      ( "st_load_low",
                        List.init lanes (fun lane ->
                            Idx_sig_assign ("low_buf", lane_index lane, Name "data_in"))
                      );
                      ( "st_load_high",
                        List.init lanes (fun lane ->
                            Idx_sig_assign ("high_buf", lane_index lane, Name "data_in"))
                      );
                      ( "st_even",
                        List.concat_map scale_lane [ 0; 1; 2; 3; 4; 5; 6; 7 ] );
                      ("st_odd", []);
                      ("st_lift", List.init (2 * lanes) lift_lane);
                      ( "st_drain",
                        [
                          Sig_assign
                            ( "data_out",
                              Indexed
                                ( "line_buf",
                                  Binop
                                    ( "*",
                                      Call_e ("to_integer", [ Name "i" ]),
                                      Int_lit 2 ) ) );
                        ] );
                      ("st_next_line", []);
                      ("st_done", []);
                    ] );
              ] );
          ],
          [] );
    ]

(* Combinational phase decode: lifting coefficient and parity per
   sweep. *)
let ref97_phase_decode =
  combinational_process ~name:"phase_decode" ~sensitivity:[ "phase" ]
    [
      Case_s
        ( Name "phase",
          [
            ( "0",
              [
                Sig_assign ("coef_q", Call_e ("to_signed", [ Int_lit (-3633); Int_lit 18 ]));
                Sig_assign ("parity", Int_lit 0);
              ] );
            ( "1",
              [
                Sig_assign ("coef_q", Call_e ("to_signed", [ Int_lit (-7233); Int_lit 18 ]));
                Sig_assign ("parity", Int_lit 1);
              ] );
            ( "2",
              [
                Sig_assign ("coef_q", Call_e ("to_signed", [ Int_lit 434; Int_lit 18 ]));
                Sig_assign ("parity", Int_lit 0);
              ] );
            ( "others",
              [
                Sig_assign ("coef_q", Call_e ("to_signed", [ Int_lit 12994; Int_lit 18 ]));
                Sig_assign ("parity", Int_lit 1);
              ] );
          ] );
    ]

let idwt97_reference =
  {
    entity = { ent_name = "idwt97_ref"; ports = ref_ports };
    architecture =
      {
        arch_name = "rtl";
        arch_decls =
          ref_common_types @ ref97_functions @ ref_common_signals
          @ [
              Constant_d ("c_k", signed18, Call_e ("to_signed", [ Int_lit 10079; Int_lit 18 ]));
              Constant_d
                ("c_inv_k", signed18, Call_e ("to_signed", [ Int_lit 6659; Int_lit 18 ]));
              Signal_d ("coef_q", signed18, None);
              Signal_d ("parity", Integer_range (0, 1), Some (Int_lit 0));
            ];
        processes =
          [ ref_control_process ~lift_phases:4; ref97_datapath; ref97_phase_decode ];
      };
  }
