(** Result of one system-model run (one Table 1 cell pair). *)

type t = {
  version : string;  (** "1", "2", ..., "6a", "7b" *)
  mode : Profile.mode;
  decode_ms : float;  (** total decoding time for the 16-tile workload *)
  idwt_ms : float;  (** union of IDWT activity intervals *)
  idwt_calls : int;
  functional_ok : bool option;
      (** [Some true] when the payload decoded bit-identically to the
          reference decoder; [None] for timing-only runs *)
}

val speedup_vs : t -> t -> float
(** [speedup_vs baseline r]: how much faster [r] decodes. *)

val idwt_speedup_vs : t -> t -> float

val pp : Format.formatter -> t -> unit
