type t = {
  kernel : Sim.Kernel.t;
  mutable spans : (Sim.Sim_time.t * Sim.Sim_time.t) list; (* reversed *)
}

let create kernel = { kernel; spans = [] }

let measure t f =
  let started = Sim.Kernel.now t.kernel in
  let result = f () in
  t.spans <- (started, Sim.Kernel.now t.kernel) :: t.spans;
  result

let intervals t = List.rev t.spans
let count t = List.length t.spans

let busy t =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Sim.Sim_time.compare a b) t.spans
  in
  let total, open_span =
    List.fold_left
      (fun (total, current) (start, stop) ->
        match current with
        | None -> (total, Some (start, stop))
        | Some (cur_start, cur_stop) ->
          if Sim.Sim_time.( <= ) start cur_stop then
            (total, Some (cur_start, Sim.Sim_time.max cur_stop stop))
          else
            ( Sim.Sim_time.add total (Sim.Sim_time.sub cur_stop cur_start),
              Some (start, stop) ))
      (Sim.Sim_time.zero, None) sorted
  in
  match open_span with
  | None -> total
  | Some (start, stop) -> Sim.Sim_time.add total (Sim.Sim_time.sub stop start)

let busy_ms t = Sim.Sim_time.to_float_ms (busy t)

let sum t =
  List.fold_left
    (fun acc (start, stop) -> Sim.Sim_time.add acc (Sim.Sim_time.sub stop start))
    Sim.Sim_time.zero t.spans
