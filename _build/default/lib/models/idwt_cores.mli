(** The synthesisable IDWT cores of Section 4.

    Two artefact pairs, as in the paper:

    - the {e behavioural} models ({!idwt53_systemc}, {!idwt97_systemc}):
      line-based inverse-lifting engines written in FOSSY's
      synthesisable subset ("the synthesisable SystemC IDWT models"),
      with the filter arithmetic factored into functions/procedures
      and an explicit control structure — the input to FOSSY;
    - the {e hand-crafted reference} designs ({!idwt53_reference},
      {!idwt97_reference}): RTL VHDL in the classic two-process style
      (control FSM + datapath with functions kept as VHDL
      subprograms), against which the paper compares the FOSSY
      output.

    The 5/3 core is pure adder/shifter datapath; the 9/7 core adds
    the four fixed-point lifting multipliers (α, β, γ, δ) and the K
    scalers, which is what makes operator sharing profitable — and
    is why FOSSY's single-FSM output comes out smaller but slower
    for the 9/7 (Table 2). *)

val line_buffer_length : int
(** Maximum line length the cores process (one tile row/column). *)

val idwt53_systemc : Fossy.Hir.module_def
val idwt97_systemc : Fossy.Hir.module_def

val idwt53_reference : Rtl.Vhdl.design
val idwt97_reference : Rtl.Vhdl.design
