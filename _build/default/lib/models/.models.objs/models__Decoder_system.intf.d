lib/models/decoder_system.mli: Osss Outcome Sim Workload
