lib/models/workload.ml: Array Jpeg2000 Option Printf Profile
