lib/models/meter.mli: Sim
