lib/models/workload.mli: Profile
