lib/models/app_models.mli: Outcome Workload
