lib/models/decoder_system.ml: Array Jpeg2000 List Meter Osss Outcome Printf Profile Queue Sim Stdlib Workload
