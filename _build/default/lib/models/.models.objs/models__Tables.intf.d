lib/models/tables.mli: Outcome Rtl
