lib/models/tables.ml: Buffer Experiment Format Fossy Idwt_cores Jpeg2000 List Osss Outcome Printf Profile Rtl Sim String
