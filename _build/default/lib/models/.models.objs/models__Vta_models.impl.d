lib/models/vta_models.ml: App_models Array Decoder_system List Osss Printf Profile Sim String Workload
