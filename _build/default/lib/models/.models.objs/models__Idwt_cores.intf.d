lib/models/idwt_cores.mli: Fossy Rtl
