lib/models/experiment.ml: App_models Float List Outcome Printf String Vta_models Workload
