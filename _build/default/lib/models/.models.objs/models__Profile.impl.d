lib/models/profile.ml: Array Jpeg2000 List Osss Sim
