lib/models/idwt_cores.ml: Fossy List Rtl
