lib/models/meter.ml: List Sim
