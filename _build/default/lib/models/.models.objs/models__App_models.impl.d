lib/models/app_models.ml: Decoder_system
