lib/models/experiment.mli: Outcome Profile
