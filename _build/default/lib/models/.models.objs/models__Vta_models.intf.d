lib/models/vta_models.mli: Osss Outcome Workload
