lib/models/outcome.mli: Format Profile
