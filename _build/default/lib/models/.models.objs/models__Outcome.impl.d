lib/models/outcome.ml: Format Jpeg2000 Profile
