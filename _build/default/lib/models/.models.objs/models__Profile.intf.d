lib/models/profile.mli: Jpeg2000 Sim
