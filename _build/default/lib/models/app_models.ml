let sw_parallel_tasks = 4

let v1 w = Decoder_system.run_sw_only ~version:"1" w
let v2 w = Decoder_system.run_coprocessor ~version:"2" ~sw_tasks:1 w
let v3 w = Decoder_system.run_pipeline ~version:"3" ~sw_tasks:1 w

let v4 w =
  Decoder_system.run_coprocessor ~version:"4" ~sw_tasks:sw_parallel_tasks w

let v5 w =
  Decoder_system.run_pipeline ~version:"5" ~sw_tasks:sw_parallel_tasks w
