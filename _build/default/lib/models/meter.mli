(** Interval meter for stage-time accounting.

    Records simulated-time intervals around stage executions and
    reports their union — the paper's "IDWT time" is the total time
    during which (any) IDWT processing was in flight, including, at
    the VTA layer, channel transfers and memory accesses belonging to
    the stage. *)

type t

val create : Sim.Kernel.t -> t

val measure : t -> (unit -> 'a) -> 'a
(** Runs the thunk in process context, recording [now] before and
    after as one interval. *)

val intervals : t -> (Sim.Sim_time.t * Sim.Sim_time.t) list
val count : t -> int

val busy : t -> Sim.Sim_time.t
(** Length of the union of all recorded intervals. *)

val busy_ms : t -> float

val sum : t -> Sim.Sim_time.t
(** Plain sum of interval lengths (counts overlap twice). *)
