(** The Application-Layer models (Table 1, upper half).

    - version 1: software only;
    - version 2: HW/SW, not parallel (blocking IQ+IDWT co-processor);
    - version 3: HW/SW parallel (pipeline, 3 IDWT modules);
    - version 4: SW parallel (4 decoder tasks, cp. version 2);
    - version 5: SW & HW/SW parallel (cp. version 3, 7-client SO). *)

val v1 : Workload.t -> Outcome.t
val v2 : Workload.t -> Outcome.t
val v3 : Workload.t -> Outcome.t
val v4 : Workload.t -> Outcome.t
val v5 : Workload.t -> Outcome.t

val sw_parallel_tasks : int
(** 4 — the paper's "four independent Software Tasks performing the
    arithmetic decoding of disjoint parts of the image". *)
