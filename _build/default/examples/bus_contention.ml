(* VTA-layer communication exploration.

   The refinement question of Section 3.2: which communication links
   go on the shared OPB and which deserve a dedicated point-to-point
   channel? This example compares the four mappings (6a/6b/7a/7b) and
   sweeps the bus burst length — the serialisation granularity that
   decides how badly concurrent masters interleave.

     dune exec examples/bus_contention.exe
*)

let () =
  let mode = Jpeg2000.Codestream.Lossy in
  Printf.printf
    "VTA communication mapping exploration (lossy, 16 tiles, 100 MHz OPB)\n\n";
  Printf.printf "%-44s %14s %12s\n" "mapping" "decode [ms]" "IDWT [ms]";
  List.iter
    (fun (label, sw_tasks, idwt_p2p) ->
      let w = Models.Workload.make ~payload:false mode in
      let r = Models.Vta_models.run_custom ~version:label ~sw_tasks ~idwt_p2p w in
      Printf.printf "%-44s %14.1f %12.2f\n"
        (Printf.sprintf "%s (%d CPU%s, IDWT on %s)" label sw_tasks
           (if sw_tasks > 1 then "s" else "")
           (if idwt_p2p then "P2P" else "bus"))
        r.Models.Outcome.decode_ms r.Models.Outcome.idwt_ms)
    [ ("6a", 1, false); ("6b", 1, true); ("7a", 4, false); ("7b", 4, true) ];

  Printf.printf
    "\nBurst-length sweep on mapping 7a (all IDWT traffic on the shared bus):\n";
  Printf.printf "%-22s %14s %12s\n" "burst [words]" "decode [ms]" "IDWT [ms]";
  List.iter
    (fun burst ->
      let w = Models.Workload.make ~payload:false mode in
      let r =
        Models.Vta_models.run_custom ~bus_max_burst:burst ~version:"7a"
          ~sw_tasks:4 ~idwt_p2p:false w
      in
      Printf.printf "%-22d %14.1f %12.2f\n" burst r.Models.Outcome.decode_ms
        r.Models.Outcome.idwt_ms)
    [ 4; 8; 16; 32; 64 ];
  Printf.printf
    "\nShort bursts pay arbitration per handful of words; long bursts make the\n\
     IDWT stream hog the bus. The dedicated P2P mapping (7b) sidesteps both -\n\
     the paper's conclusion that 7b 'does better scale with increasing\n\
     parallelism'.\n"
