(* Real-time checking and waveform tracing.

   OSSS pairs the EET annotation with its dual, the Required
   Execution Time: an OSSS_RET block asserts that a stretch of
   behaviour meets its deadline during simulation. This example runs
   a small clocked tile-processing loop, watches its progress signals
   with the VCD tracer (open the dump in GTKWave), and demonstrates a
   deadline violation being caught.

     dune exec examples/deadline_watch.exe
*)

let us = Sim.Sim_time.us

let () =
  let kernel = Sim.Kernel.create () in
  let clk =
    Sim.Clock.create kernel ~period:(Sim.Sim_time.ns 10)
      ~until:(Sim.Sim_time.us 600) ()
  in

  (* Progress signals, traced to a VCD file. *)
  let current_tile = Sim.Signal.create kernel ~name:"current_tile" 0 in
  let busy = Sim.Signal.create kernel ~name:"busy" false in
  let vcd = Sim.Vcd.create kernel ~top:"tile_engine" () in
  Sim.Vcd.probe_int vcd ~name:"current_tile" ~width:8 current_tile;
  Sim.Vcd.probe_bool vcd ~name:"busy" busy;

  (* Tile queue: processing times vary per tile; tile 5 blows its
     deadline on purpose. *)
  let work = Sim.Mailbox.create kernel ~name:"tiles" () in
  Sim.Kernel.spawn kernel (fun () ->
      for tile = 1 to 6 do
        Sim.Mailbox.put work (tile, us (if tile = 5 then 130 else 40 + (tile * 7)))
      done);

  Sim.Kernel.spawn kernel (fun () ->
      for _ = 1 to 6 do
        let tile, cost = Sim.Mailbox.get work in
        Sim.Signal.write current_tile tile;
        Sim.Signal.write busy true;
        (match
           Osss.Eet.ret_check ~label:"tile deadline" (us 100) (fun () ->
               Osss.Eet.consume cost)
         with
        | (), true ->
          Printf.printf "[%8s] tile %d done within its 100 us budget\n"
            (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
            tile
        | (), false ->
          Printf.printf "[%8s] tile %d MISSED its deadline (%s needed)\n"
            (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
            tile
            (Sim.Sim_time.to_string cost));
        Sim.Signal.write busy false;
        (* Re-synchronise with the 100 MHz clock between tiles. *)
        Sim.Clock.wait_posedge clk
      done;
      Sim.Kernel.stop kernel);

  Sim.Kernel.run kernel;

  let path = Filename.temp_file "tile_engine" ".vcd" in
  Sim.Vcd.save vcd path;
  Printf.printf
    "\ntraced %d signal changes over %d clock edges -> %s (open with GTKWave)\n"
    (Sim.Vcd.change_count vcd) (Sim.Clock.edges clk) path;

  (* The raising variant turns a missed deadline into a simulation
     failure — useful under a test runner. *)
  let kernel2 = Sim.Kernel.create () in
  Sim.Kernel.spawn kernel2 (fun () ->
      try Osss.Eet.ret ~label:"hard deadline" (us 10) (fun () -> Osss.Eet.consume (us 25))
      with Osss.Eet.Deadline_violation { label; required; actual } ->
        Printf.printf "caught violation of %S: required %s, needed %s\n" label
          (Sim.Sim_time.to_string required)
          (Sim.Sim_time.to_string actual));
  Sim.Kernel.run kernel2
