(* Application-Layer design-space exploration.

   Replays the paper's Section 3 narrative: starting from the
   software-only decoder, each restructuring step (co-processor,
   pipeline, software parallelisation) is simulated and its effect on
   the decoding time assessed — the paper's argument for why an
   executable Application Model is worth having before committing to
   an architecture.

     dune exec examples/pipeline_explore.exe
*)

let () =
  let mode = Jpeg2000.Codestream.Lossless in
  let run version = Models.Experiment.run ~payload:false version mode in
  let baseline = run Models.Experiment.V1 in
  Printf.printf
    "Exploring the JPEG 2000 decoder on the OSSS Application Layer (lossless,\n\
     16 tiles, 3 components; timings back-annotated from the paper's profile).\n\n";
  let step version story =
    let r = run version in
    Printf.printf "version %-2s %-52s %8.1f ms  (%.2fx)\n" r.Models.Outcome.version
      story r.Models.Outcome.decode_ms
      (Models.Outcome.speedup_vs baseline r);
    r
  in
  let _ = step Models.Experiment.V1 "software only" in
  let _ =
    step Models.Experiment.V2 "IQ+IDWT moved into a co-processing Shared Object"
  in
  let _ =
    step Models.Experiment.V3 "pipelined across tiles, 3 parallel IDWT modules"
  in
  let _ = step Models.Experiment.V4 "4 decoder tasks on disjoint image parts" in
  let v5 = step Models.Experiment.V5 "both: 4 SW tasks + pipelined HW (7-client SO)" in
  Printf.printf
    "\nObservations (cf. the paper's Section 3):\n\
    \  - the co-processor alone buys ~10%% - the arithmetic decoder dominates;\n\
    \  - pipelining helps little for the same reason;\n\
    \  - parallelising the software decoder is what yields the ~4.5x;\n\
    \  - version 5 pays for its 7-client Shared Object: %0.1f ms slower than 4.\n"
    (v5.Models.Outcome.decode_ms
    -. (run Models.Experiment.V4).Models.Outcome.decode_ms);
  Printf.printf
    "\nIDWT time in hardware vs software: %.1f ms -> %.1f ms (%.0fx)\n"
    baseline.Models.Outcome.idwt_ms v5.Models.Outcome.idwt_ms
    (baseline.Models.Outcome.idwt_ms /. v5.Models.Outcome.idwt_ms)
