(* A second system modelled with the OSSS API: a Motion-JPEG 2000
   camera pipeline (the encode-side dual of the paper's decoder).

   camera task --frames--> encoder task + entropy co-processor SO
                --packets--> network link (bounded bandwidth)

   Frames are real images compressed by the library's encoder, so
   packet sizes (and therefore link occupancy) are genuine; timing
   comes from EET annotations, and an OSSS_RET block checks the
   25 fps end-to-end deadline of every frame.

     dune exec examples/mjpeg_stream.exe
*)

let ms = Sim.Sim_time.ms
let frame_period = ms 40 (* 25 fps *)
let frames = 8

type packet = { seq : int; bytes : int; captured_at : Sim.Sim_time.t }

let () =
  let kernel = Sim.Kernel.create () in

  let frame_queue = Sim.Mailbox.create kernel ~name:"frames" ~capacity:2 () in
  let packet_queue = Sim.Mailbox.create kernel ~name:"packets" ~capacity:4 () in

  (* The entropy co-processor: a Shared Object wrapping the Tier-1
     coder, 2 us per coded output byte at 100 MHz. *)
  let entropy =
    Osss.Shared_object.create kernel ~name:"entropy_coproc"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      ()
  in
  let encoder_port = Osss.Shared_object.register_client entropy ~name:"encoder" () in

  (* Camera: one frame every 40 ms, 5 ms sensor readout. *)
  let _camera =
    Osss.Sw_task.create kernel ~name:"camera" (fun task ->
        for seq = 1 to frames do
          let frame =
            Osss.Sw_task.eet task (ms 5) (fun () ->
                Jpeg2000.Image.smooth ~width:64 ~height:48 ~components:3
                  ~seed:(100 + seq))
          in
          Sim.Mailbox.put frame_queue (seq, frame, Sim.Kernel.now kernel);
          Osss.Sw_task.consume task (Sim.Sim_time.sub frame_period (ms 5))
        done)
  in

  (* Encoder: wavelet + quantisation in software (12 ms), entropy
     coding on the co-processor (time grows with the coded size). *)
  let _encoder =
    Osss.Sw_task.create kernel ~name:"encoder" (fun task ->
        for _ = 1 to frames do
          let seq, frame, captured_at = Sim.Mailbox.get frame_queue in
          let stream =
            Osss.Sw_task.eet task (ms 12) (fun () ->
                Jpeg2000.Encoder.encode
                  { Jpeg2000.Encoder.default_lossy with tile_w = 64; tile_h = 48 }
                  frame)
          in
          let bytes = String.length stream in
          Osss.Shared_object.call entropy encoder_port
            ~eet:(Sim.Sim_time.us (2 * bytes))
            (fun () -> ());
          Sim.Mailbox.put packet_queue { seq; bytes; captured_at }
        done)
  in

  (* Network sink: 2 Mbit/s serial link; checks the frame deadline. *)
  let link = Osss.Channel.p2p kernel ~clock_hz:62_500 ~cycles_per_word:1 () in
  let _sink =
    Osss.Sw_task.create kernel ~name:"network" (fun _task ->
        for _ = 1 to frames do
          let p = Sim.Mailbox.get packet_queue in
          let (), on_time =
            Osss.Eet.ret_check ~label:"frame latency" frame_period (fun () ->
                Osss.Channel.transfer link ~words:((p.bytes + 3) / 4))
          in
          let latency =
            Sim.Sim_time.sub (Sim.Kernel.now kernel) p.captured_at
          in
          Printf.printf "[%8s] frame %d: %5d bytes, latency %8s %s\n"
            (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
            p.seq p.bytes
            (Sim.Sim_time.to_string latency)
            (if on_time && Sim.Sim_time.( <= ) latency (Sim.Sim_time.mul_int frame_period 2)
             then "" else "  <- pipeline congestion")
        done)
  in

  Sim.Kernel.run kernel;
  Printf.printf
    "\n%d frames streamed in %s; co-processor busy %s, serialised %d calls\n"
    frames
    (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
    (Sim.Sim_time.to_string (Osss.Shared_object.total_busy entropy))
    (Osss.Shared_object.calls entropy)
