(* Codec round-trip: the JPEG 2000 substrate end to end.

   Generates a synthetic photograph-like image, encodes it losslessly
   (5/3 + RCT + EBCOT/MQ) and lossily (9/7 + ICT + dead-zone
   quantiser), decodes both, and reports sizes and fidelity. The
   lossless path must reconstruct bit-exactly.

     dune exec examples/codec_roundtrip.exe
*)

let () =
  let image = Jpeg2000.Image.smooth ~width:256 ~height:192 ~components:3 ~seed:42 in
  let raw_bytes =
    Jpeg2000.Image.width image * Jpeg2000.Image.height image
    * Jpeg2000.Image.components image
  in
  Printf.printf "input: %dx%d, 3 components (%d bytes raw)\n\n"
    (Jpeg2000.Image.width image) (Jpeg2000.Image.height image) raw_bytes;

  (* Lossless: must round-trip exactly. *)
  let lossless_stream = Jpeg2000.Encoder.encode Jpeg2000.Encoder.default_lossless image in
  let lossless_out = Jpeg2000.Decoder.decode lossless_stream in
  Printf.printf "lossless (5/3 + RCT): %d bytes (%.2f bits/sample) - %s\n"
    (String.length lossless_stream)
    (8.0 *. float_of_int (String.length lossless_stream) /. float_of_int raw_bytes)
    (if Jpeg2000.Image.equal image lossless_out then "bit-exact reconstruction"
     else "RECONSTRUCTION MISMATCH");

  (* Lossy at a few operating points. *)
  List.iter
    (fun step ->
      let config = { Jpeg2000.Encoder.default_lossy with base_step = step } in
      let stream = Jpeg2000.Encoder.encode config image in
      let out = Jpeg2000.Decoder.decode stream in
      Printf.printf
        "lossy (9/7 + ICT), step %4.1f: %6d bytes (%.2f bits/sample), PSNR %.1f dB\n"
        step (String.length stream)
        (8.0 *. float_of_int (String.length stream) /. float_of_int raw_bytes)
        (Jpeg2000.Image.psnr image out))
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ];

  (* Scalability: the same lossless stream decoded progressively. *)
  Printf.printf "\nscalable decode of the lossless stream:\n";
  List.iter
    (fun passes ->
      let out = Jpeg2000.Decoder.decode_progressive ~max_passes:passes lossless_stream in
      let psnr = Jpeg2000.Image.psnr image out in
      Printf.printf "  first %2d coding passes: %s\n" passes
        (if psnr = infinity then "exact reconstruction"
         else Printf.sprintf "PSNR %5.1f dB" psnr))
    [ 3; 6; 9; 12; 24 ];
  let half = Jpeg2000.Decoder.decode_reduced ~discard_levels:1 lossless_stream in
  Printf.printf "  resolution-scalable:    %dx%d thumbnail from the same bytes\n"
    (Jpeg2000.Image.width half) (Jpeg2000.Image.height half);

  (* The staged decoder interface used by the system models. *)
  let stream = Jpeg2000.Decoder.parse lossless_stream in
  let header = stream.Jpeg2000.Codestream.header in
  let first_tile = List.hd stream.Jpeg2000.Codestream.tiles in
  let staged =
    Jpeg2000.Decoder.entropy_decode_tile header first_tile
    |> Jpeg2000.Decoder.dequantise header
    |> Jpeg2000.Decoder.inverse_wavelet header
    |> Jpeg2000.Decoder.inverse_colour_and_shift header first_tile
  in
  Printf.printf
    "\nstaged decode of tile 0 (%dx%d): entropy -> IQ -> IDWT -> ICT/DC ok (%d samples)\n"
    (Jpeg2000.Tile.width staged) (Jpeg2000.Tile.height staged)
    (Jpeg2000.Tile.samples staged)
