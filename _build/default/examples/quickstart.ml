(* Quickstart: the OSSS Application Layer in one small model.

   A Software Task produces work items; a hardware module consumes
   them through a guarded Shared Object (the passive component that
   serialises and synchronises all communication in OSSS). EET blocks
   annotate execution times, so the simulation reports how long the
   partitioning takes — run it with:

     dune exec examples/quickstart.exe
*)

let ms = Sim.Sim_time.ms

type buffer = { items : int Queue.t }

let () =
  let kernel = Sim.Kernel.create () in

  (* A Shared Object with a FCFS arbiter guarding a small queue. *)
  let buffer =
    Osss.Shared_object.create kernel ~name:"buffer"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      { items = Queue.create () }
  in
  let producer_port = Osss.Shared_object.register_client buffer ~name:"producer" () in
  let consumer_port = Osss.Shared_object.register_client buffer ~name:"consumer" () in

  (* The Software Task: "compute" an item for 5 ms, then store it via
     a blocking method call. *)
  let _task =
    Osss.Sw_task.create kernel ~name:"producer" (fun task ->
        for i = 1 to 4 do
          let item = Osss.Sw_task.eet task (ms 5) (fun () -> i * i) in
          Osss.Shared_object.call buffer producer_port (fun state ->
              Queue.push item state.items);
          Printf.printf "[%6s] producer stored %d\n"
            (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
            item
        done)
  in

  (* The hardware module: a guarded method call blocks until the
     guard (queue non-empty) holds, then the 2 ms EET models the
     hardware computation on the item. *)
  let consumer = Osss.Hw_module.create kernel ~name:"consumer" ~clock_hz:100_000_000 () in
  Osss.Hw_module.add_process consumer ~name:"main" (fun () ->
      for _ = 1 to 4 do
        let item =
          Osss.Shared_object.call_guarded buffer consumer_port
            ~guard:(fun state -> not (Queue.is_empty state.items))
            (fun state -> Queue.pop state.items)
        in
        let result = Osss.Hw_module.eet consumer (ms 2) (fun () -> item + 1) in
        Printf.printf "[%6s] consumer processed %d -> %d\n"
          (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
          item result
      done);

  Sim.Kernel.run kernel;
  Printf.printf "simulation finished at %s after %d delta cycles\n"
    (Sim.Sim_time.to_string (Sim.Kernel.now kernel))
    (Sim.Kernel.delta_count kernel)
