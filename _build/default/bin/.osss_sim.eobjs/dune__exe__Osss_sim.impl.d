bin/osss_sim.ml: Arg Cmd Cmdliner Format Jpeg2000 Models Osss Printf Str_contains Term
