bin/osss_sim.mli:
