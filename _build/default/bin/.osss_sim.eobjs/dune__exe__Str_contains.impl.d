bin/str_contains.ml: String
