(* Command-line JPEG 2000 codec over the library's simplified
   codestream: encode/decode PGM/PPM images, inspect streams. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let mode_conv =
  let parse = function
    | "lossless" -> Ok Jpeg2000.Codestream.Lossless
    | "lossy" -> Ok Jpeg2000.Codestream.Lossy
    | other -> Error (`Msg (Printf.sprintf "unknown mode %S" other))
  in
  Arg.conv (parse, Jpeg2000.Codestream.pp_mode)

let input_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT" ~doc:"Input file.")

let output_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Output file.")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Jpeg2000.Codestream.Lossless
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"Coding mode: lossless (5/3) or lossy (9/7).")

let tile_arg =
  Arg.(value & opt int 128 & info [ "t"; "tile" ] ~docv:"N" ~doc:"Tile size (N x N).")

let levels_arg =
  Arg.(value & opt int 3 & info [ "l"; "levels" ] ~docv:"L" ~doc:"Wavelet levels.")

let step_arg =
  Arg.(
    value & opt float 2.0
    & info [ "s"; "step" ] ~docv:"STEP" ~doc:"Lossy quantiser base step.")

let code_block_arg =
  Arg.(
    value & opt int 32
    & info [ "b"; "code-block" ] ~docv:"N" ~doc:"EBCOT code-block size (N x N).")

let encode_cmd =
  let run input output mode tile levels step code_block =
    let image = Jpeg2000.Image.of_pnm (read_file input) in
    let config =
      {
        Jpeg2000.Encoder.tile_w = tile;
        tile_h = tile;
        levels;
        mode;
        base_step = step;
        code_block;
      }
    in
    let data = Jpeg2000.Encoder.encode config image in
    write_file output data;
    Printf.printf "%s: %dx%dx%d -> %d bytes (%.2f bits/sample, %s)\n" output
      (Jpeg2000.Image.width image) (Jpeg2000.Image.height image)
      (Jpeg2000.Image.components image) (String.length data)
      (8.0 *. float_of_int (String.length data)
      /. float_of_int
           (Jpeg2000.Image.width image * Jpeg2000.Image.height image
          * Jpeg2000.Image.components image))
      (Format.asprintf "%a" Jpeg2000.Codestream.pp_mode mode)
  in
  Cmd.v
    (Cmd.info "encode" ~doc:"Encode a PGM/PPM image to a codestream.")
    Term.(
      const run $ input_arg $ output_arg $ mode_arg $ tile_arg $ levels_arg
      $ step_arg $ code_block_arg)

let decode_cmd =
  let run input output reduce passes =
    let data = read_file input in
    let image =
      match (reduce, passes) with
      | 0, None -> Jpeg2000.Decoder.decode data
      | 0, Some k -> Jpeg2000.Decoder.decode_progressive ~max_passes:k data
      | d, None -> Jpeg2000.Decoder.decode_reduced ~discard_levels:d data
      | _, Some _ ->
        prerr_endline "decode: --reduce and --passes cannot be combined";
        exit 1
    in
    write_file output (Jpeg2000.Image.to_pnm image);
    Printf.printf "%s: %dx%dx%d decoded%s\n" output (Jpeg2000.Image.width image)
      (Jpeg2000.Image.height image)
      (Jpeg2000.Image.components image)
      (if reduce = 0 then "" else Printf.sprintf " (1/%d resolution)" (1 lsl reduce))
  in
  Cmd.v
    (Cmd.info "decode" ~doc:"Decode a codestream back to PGM/PPM.")
    Term.(
      const run $ input_arg $ output_arg
      $ Arg.(
          value & opt int 0
          & info [ "r"; "reduce" ] ~docv:"D"
              ~doc:"Discard the D finest resolution levels (1/2^D size).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "p"; "passes" ] ~docv:"K"
              ~doc:"Decode only the first K coding passes per code block (SNR \
                    scalability)."))

let shape_cmd =
  let run input output max_bytes =
    let data = read_file input in
    let shaped = Jpeg2000.Rate.shape ~max_bytes data in
    write_file output shaped;
    Printf.printf "%s: %d -> %d bytes (budget %d, floor %d)\n" output
      (String.length data) (String.length shaped) max_bytes
      (Jpeg2000.Rate.minimum_bytes data)
  in
  Cmd.v
    (Cmd.info "shape" ~doc:"Truncate a codestream to a byte budget (rate shaping).")
    Term.(
      const run $ input_arg $ output_arg
      $ Arg.(
          required
          & opt (some int) None
          & info [ "bytes" ] ~docv:"N" ~doc:"Maximum output size in bytes."))

let info_cmd =
  let run input =
    let stream = Jpeg2000.Codestream.parse (read_file input) in
    let h = stream.Jpeg2000.Codestream.header in
    Printf.printf "%dx%d, %d component(s), %dx%d tiles, %d levels, %s\n"
      h.Jpeg2000.Codestream.width h.Jpeg2000.Codestream.height
      h.Jpeg2000.Codestream.components h.Jpeg2000.Codestream.tile_w
      h.Jpeg2000.Codestream.tile_h h.Jpeg2000.Codestream.levels
      (Format.asprintf "%a" Jpeg2000.Codestream.pp_mode h.Jpeg2000.Codestream.mode);
    List.iter
      (fun tile ->
        Printf.printf "  tile %d @(%d,%d) %dx%d: %d entropy-coded bytes\n"
          tile.Jpeg2000.Codestream.tile_index tile.Jpeg2000.Codestream.tile_x0
          tile.Jpeg2000.Codestream.tile_y0 tile.Jpeg2000.Codestream.tile_w
          tile.Jpeg2000.Codestream.tile_h
          (Jpeg2000.Codestream.segment_bytes tile))
      stream.Jpeg2000.Codestream.tiles
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print codestream structure.")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"STREAM" ~doc:"Codestream."))

let () =
  let doc = "JPEG 2000 codec (OSSS case-study substrate)" in
  let group = Cmd.group (Cmd.info "j2k_codec" ~doc) [ encode_cmd; decode_cmd; shape_cmd; info_cmd ] in
  match Cmd.eval_value ~catch:false group with
  | Ok _ -> ()
  | Error `Exn -> exit 125
  | Error (`Parse | `Term) -> exit 124
  | exception Failure msg ->
    Printf.eprintf "j2k_codec: %s\n" msg;
    exit 1
  | exception Sys_error msg ->
    Printf.eprintf "j2k_codec: %s\n" msg;
    exit 1
