(* Tests for the analysis layer: dataflow framework, the diagnostic
   suite on HIR/FSM/VHDL, the OSSS guard-deadlock and delta-race
   detectors, and the synthesis lint gate. *)

open Fossy.Hir
module D = Analysis.Diagnostic

let codes ds = List.map (fun d -> d.D.code) ds
let has code ds = List.mem code (codes ds)

let str_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_has label code ds =
  if not (has code ds) then
    Alcotest.failf "%s: expected %s among [%s]" label code
      (String.concat "; " (List.map D.render ds))

let check_lacks label code ds =
  if has code ds then
    Alcotest.failf "%s: unexpected %s: %s" label code
      (String.concat "; "
         (List.map D.render (List.filter (fun d -> d.D.code = code) ds)))

let check_no_errors label ds =
  match D.errors ds with
  | [] -> ()
  | es ->
    Alcotest.failf "%s: unexpected errors: %s" label
      (String.concat "; " (List.map D.render es))

(* A minimal well-formed scaffold the fixtures perturb. *)
let fixture ?(ports = []) ?(vars = []) ?(arrays = []) ?(subs = []) body =
  {
    m_name = "fix";
    m_ports = ports;
    m_vars = vars;
    m_arrays = arrays;
    m_subprograms = subs;
    m_body = body;
  }

let lint = Analysis.Lint.lint_module

(* -- dataflow framework -------------------------------------------- *)

let test_dataflow_uninit_sets () =
  let m =
    fixture
      ~vars:[ ("x", int_ty 8); ("y", int_ty 8) ]
      [ assign "x" (c 1); assign "y" (v "x"); Wait ]
  in
  let cfg = Analysis.Dataflow.of_body m in
  let sol =
    Analysis.Dataflow.maybe_uninit cfg
      ~at_entry:(Analysis.Dataflow.Names.of_list [ "x"; "y" ])
  in
  let node =
    Array.to_list cfg.Analysis.Dataflow.nodes
    |> List.find (fun n -> n.Analysis.Dataflow.path = "fix/body/1")
  in
  let before = sol.Analysis.Dataflow.before.(node.Analysis.Dataflow.id) in
  Alcotest.(check bool)
    "x defined before its read" false
    (Analysis.Dataflow.Names.mem "x" before);
  Alcotest.(check bool)
    "y still undefined there" true
    (Analysis.Dataflow.Names.mem "y" before)

let test_dataflow_back_edge_liveness () =
  (* x is written at the bottom of the process loop and read at the
     top: the exit→entry back edge must keep the write live. *)
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 8) ]
      ~vars:[ ("x", int_ty 8) ]
      [ assign "dout" (v "x"); Wait; assign "x" (v "x" +: c 1); Wait ]
  in
  check_lacks "loop-carried value" "W003" (lint m)

(* -- HIR diagnostics: one failing fixture per kind ------------------ *)

let test_uninit_var_read () =
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 8) ]
      ~vars:[ ("x", int_ty 8) ]
      [ assign "dout" (v "x"); Wait ]
  in
  let ds = lint m in
  check_has "uninit var" "W001" ds;
  let d = List.find (fun d -> d.D.code = "W001") ds in
  Alcotest.(check string) "path points at the read" "fix/body/0" d.D.path

let test_uninit_array_read () =
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 8) ]
      ~arrays:[ ("buf", int_ty 8, 4) ]
      [ assign "dout" (Arr ("buf", c 0)); Wait ]
  in
  check_has "uninit array" "W002" (lint m)

let test_uninit_clean_after_write () =
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 8) ]
      ~vars:[ ("x", int_ty 8) ]
      [ assign "x" (c 1); assign "dout" (v "x"); Wait ]
  in
  check_lacks "initialised var" "W001" (lint m)

let test_dead_assignment () =
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 16) ]
      ~vars:[ ("x", int_ty 16) ]
      [ assign "x" (c 1); assign "x" (c 2); assign "dout" (v "x"); Wait ]
  in
  let ds = lint m in
  check_has "overwritten before read" "W003" ds;
  let d = List.find (fun d -> d.D.code = "W003") ds in
  Alcotest.(check string) "first assignment flagged" "fix/body/0" d.D.path

let test_port_write_never_dead () =
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 16) ]
      [ assign "dout" (c 1); assign "dout" (c 2); Wait ]
  in
  check_lacks "output writes observable" "W003" (lint m)

let test_unreachable_statement () =
  let m =
    fixture
      ~vars:[ ("x", int_ty 8) ]
      [ If (c 0, [ assign "x" (c 1) ], [ assign "x" (c 2) ]); Wait ]
  in
  let ds = lint m in
  check_has "const-false then-arm" "W004" ds;
  Alcotest.(check bool)
    "the then-arm is the flagged one" true
    (List.exists
       (fun d -> d.D.code = "W004" && d.D.path = "fix/body/0/then/0")
       ds)

let test_width_constant_overflow () =
  let m =
    fixture ~vars:[ ("x", int_ty 4) ] [ assign "x" (c 100); Wait ]
  in
  check_has "100 into int<4>" "W005" (lint m)

let test_width_call_argument () =
  let sub =
    {
      s_name = "f";
      s_params = [ ("p", int_ty 8) ];
      s_ret = None;
      s_locals = [];
      s_body = [ Wait ];
    }
  in
  let m = fixture ~subs:[ sub ] [ Call_p ("f", [ c 300 ]); Wait ] in
  check_has "300 into int<8> parameter" "W005" (lint m)

let test_width_constant_fits () =
  let m = fixture ~vars:[ ("x", int_ty 4) ] [ assign "x" (c 7); Wait ] in
  check_lacks "7 fits int<4>" "W005" (lint m)

let test_shift_exceeds_width () =
  let m =
    fixture
      ~vars:[ ("x", int_ty 8); ("y", int_ty 8) ]
      [ assign "x" (c 1); assign "y" (v "x" >>: 9); Wait ]
  in
  let ds = lint m in
  check_has "shift by 9 on int<8>" "E006" ds;
  let m_ok =
    fixture
      ~vars:[ ("x", int_ty 8); ("y", int_ty 8) ]
      [ assign "x" (c 1); assign "y" (v "x" >>: 7); Wait ]
  in
  check_lacks "shift by 7 on int<8>" "E006" (lint m_ok)

let test_signed_unsigned_comparison () =
  let m =
    fixture
      ~vars:[ ("x", int_ty 8); ("u", uint_ty 8) ]
      [
        assign "x" (c 1);
        assign "u" (c 1);
        If (v "x" <: v "u", [ Wait ], [ Wait ]);
      ]
  in
  check_has "int<8> < uint<8>" "W007" (lint m);
  let m_ok =
    fixture
      ~vars:[ ("x", int_ty 8); ("y", int_ty 8) ]
      [
        assign "x" (c 1);
        assign "y" (c 1);
        If (v "x" <: v "y", [ Wait ], [ Wait ]);
      ]
  in
  check_lacks "same signedness" "W007" (lint m_ok)

let test_wait_free_loop_path () =
  let m =
    fixture
      ~ports:[ ("go", Pin, uint_ty 1); ("sel", Pin, uint_ty 1) ]
      [ While (v "go", [ If (v "sel", [ Wait ], []) ]) ]
  in
  (* Hir.validate accepts this (a Wait exists somewhere in the body);
     only the path-sensitive pass sees the wait-free else path. *)
  (match validate m with
  | Ok () -> ()
  | Error es -> Alcotest.failf "validate should accept: %s" (String.concat "; " es));
  check_has "wait only on one branch" "E008" (lint m);
  let m_ok =
    fixture
      ~ports:[ ("go", Pin, uint_ty 1); ("sel", Pin, uint_ty 1) ]
      [ While (v "go", [ If (v "sel", [ Wait ], [ Wait ]) ]) ]
  in
  check_lacks "wait on both branches" "E008" (lint m_ok)

let test_call_cycle () =
  let proc name callee =
    {
      s_name = name;
      s_params = [];
      s_ret = None;
      s_locals = [];
      s_body = [ Call_p (callee, []) ];
    }
  in
  let m = fixture ~subs:[ proc "f" "g"; proc "g" "f" ] [ Wait ] in
  check_has "f <-> g" "E009" (lint m)

let test_call_chain_clean () =
  let proc name body =
    { s_name = name; s_params = []; s_ret = None; s_locals = []; s_body = body }
  in
  let m =
    fixture
      ~subs:[ proc "f" [ Call_p ("g", []) ]; proc "g" [] ]
      [ Call_p ("f", []); Wait ]
  in
  check_lacks "acyclic calls" "E009" (lint m)

let test_write_to_input_port () =
  let m =
    fixture ~ports:[ ("din", Pin, int_ty 8) ] [ assign "din" (c 0); Wait ]
  in
  check_has "input driven from inside" "E010" (lint m)

let test_undriven_output_read () =
  let m =
    fixture
      ~ports:[ ("dout", Pout, int_ty 8) ]
      ~vars:[ ("x", int_ty 8) ]
      [ assign "x" (v "dout"); Wait ]
  in
  check_has "read of undriven output" "E011" (lint m)

let test_undriven_output_unread () =
  let m = fixture ~ports:[ ("dout", Pout, int_ty 8) ] [ Wait ] in
  let ds = lint m in
  check_has "undriven output warning" "W015" ds;
  check_lacks "not the error form" "E011" ds

(* -- FSM diagnostics ------------------------------------------------ *)

let test_fsm_unreachable_state () =
  let fsm =
    {
      Fossy.Fsm.fsm_name = "fsmfix";
      inputs = [];
      outputs = [];
      vars = [];
      arrays = [];
      states =
        [|
          { Fossy.Fsm.actions = []; next = Fossy.Fsm.Branch (Const 0, 1, 2) };
          { Fossy.Fsm.actions = []; next = Fossy.Fsm.Goto 0 };
          { Fossy.Fsm.actions = []; next = Fossy.Fsm.Goto 0 };
        |];
      entry = 0;
    }
  in
  (* The structural reachability of the synthesis flow follows both
     branch arms; the lint is constant-aware and sees state 1 dead. *)
  Alcotest.(check bool)
    "Fsm.reachable_states is not const-aware" true
    (Fossy.Fsm.reachable_states fsm).(1);
  let ds = Analysis.Fsm_lint.run fsm in
  Alcotest.(check bool)
    "state 1 unreachable" true
    (List.exists
       (fun d -> d.D.code = "W012" && d.D.path = "fsmfix/state-1")
       ds)

let test_fsm_unread_register () =
  let fsm =
    {
      Fossy.Fsm.fsm_name = "fsmfix";
      inputs = [ ("go", uint_ty 1) ];
      outputs = [];
      vars = [ ("r", int_ty 8); ("s", int_ty 8) ];
      arrays = [];
      states =
        [|
          {
            Fossy.Fsm.actions = [ Fossy.Fsm.Do (Lv_var "r", c 1) ];
            next = Fossy.Fsm.Branch (v "s", 0, 0);
          };
        |];
      entry = 0;
    }
  in
  let ds = Analysis.Fsm_lint.run fsm in
  Alcotest.(check bool)
    "r written but never read" true
    (List.exists (fun d -> d.D.code = "W013" && d.D.path = "fsmfix/r") ds);
  Alcotest.(check bool)
    "s read by the branch" false
    (List.exists (fun d -> d.D.code = "W013" && d.D.path = "fsmfix/s") ds)

(* -- VHDL diagnostics ----------------------------------------------- *)

let vhdl_design ?(ports = []) ?(decls = []) processes =
  {
    Rtl.Vhdl.entity = { Rtl.Vhdl.ent_name = "vfix"; ports };
    architecture = { Rtl.Vhdl.arch_name = "rtl"; arch_decls = decls; processes };
  }

let test_vhdl_input_driven () =
  let d =
    vhdl_design
      ~ports:
        [ { Rtl.Vhdl.port_name = "din"; dir = Rtl.Vhdl.In; ptype = Rtl.Vhdl.Std_logic } ]
      [
        Rtl.Vhdl.combinational_process ~name:"bad" ~sensitivity:[ "din" ]
          [ Rtl.Vhdl.Sig_assign ("din", Rtl.Vhdl.Bit_lit '0') ];
      ]
  in
  check_has "drives its own input" "E010" (Analysis.Lint.lint_design d)

let test_vhdl_undriven_output () =
  let d =
    vhdl_design
      ~ports:
        [
          { Rtl.Vhdl.port_name = "dout"; dir = Rtl.Vhdl.Out; ptype = Rtl.Vhdl.Std_logic };
          { Rtl.Vhdl.port_name = "aux"; dir = Rtl.Vhdl.Out; ptype = Rtl.Vhdl.Std_logic };
        ]
      [
        Rtl.Vhdl.combinational_process ~name:"p" ~sensitivity:[ "dout" ]
          [ Rtl.Vhdl.Null_s ];
      ]
  in
  let ds = Analysis.Lint.lint_design d in
  check_has "read but undriven" "E011" ds;
  check_has "unread and undriven" "W015" ds

let test_vhdl_unused_signal () =
  let d =
    vhdl_design
      ~decls:[ Rtl.Vhdl.Signal_d ("ghost", Rtl.Vhdl.Std_logic, None) ]
      []
  in
  check_has "declared, never used" "W017" (Analysis.Lint.lint_design d)

(* -- OSSS guard deadlocks ------------------------------------------- *)

let test_guard_deadlock_cycle () =
  let vta = Osss.Vta.create Osss.Platform.ml401 in
  Osss.Vta.record_so_access vta ~client:"A" ~so:"s1" ~guarded:true;
  Osss.Vta.record_so_access vta ~client:"B" ~so:"s1" ~guarded:true;
  check_has "two guarded clients, nobody completes" "E014"
    (Analysis.Lint.lint_vta vta)

let test_guard_deadlock_isolated () =
  let vta = Osss.Vta.create Osss.Platform.ml401 in
  Osss.Vta.record_so_access vta ~client:"A" ~so:"s1" ~guarded:true;
  check_has "guard nobody can enable" "E014" (Analysis.Lint.lint_vta vta)

let test_guard_deadlock_clean () =
  let vta = Osss.Vta.create Osss.Platform.ml401 in
  Osss.Vta.record_so_access vta ~client:"A" ~so:"s1" ~guarded:true;
  Osss.Vta.record_so_access vta ~client:"B" ~so:"s1" ~guarded:false;
  check_lacks "B's plain call enables A" "E014" (Analysis.Lint.lint_vta vta)

let test_wait_graph_export () =
  let vta = Models.Vta_models.mapping ~sw_tasks:2 ~idwt_p2p:true in
  let graph = Osss.Vta.wait_graph vta in
  let edges c = try List.assoc c graph with Not_found -> [] in
  Alcotest.(check bool)
    "decoder0 guard-waits on hwsw_so" true
    (List.mem ("hwsw_so", true) (edges "decoder0"));
  Alcotest.(check bool)
    "idwt53 streams unguarded on hwsw_so" true
    (List.mem ("hwsw_so", false) (edges "idwt53"))

(* -- delta-cycle races ---------------------------------------------- *)

let test_delta_race_recorded () =
  let k = Sim.Kernel.create () in
  let s = Sim.Signal.create k ~name:"bus" 0 in
  Sim.Kernel.spawn k ~name:"p1" (fun () -> Sim.Signal.write s 1);
  Sim.Kernel.spawn k ~name:"p2" (fun () -> Sim.Signal.write s 2);
  Sim.Kernel.run k;
  (match Sim.Kernel.races k with
  | [ r ] ->
    Alcotest.(check string) "signal" "bus" r.Sim.Kernel.race_signal;
    Alcotest.(check string) "first writer" "p1" r.Sim.Kernel.race_first;
    Alcotest.(check string) "second writer" "p2" r.Sim.Kernel.race_second
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs));
  check_has "rendered as E015" "E015" (Analysis.Lint.lint_kernel k)

let test_delta_race_raises () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.set_race_policy k Sim.Kernel.Race_raise;
  let s = Sim.Signal.create k ~name:"bus" 0 in
  Sim.Kernel.spawn k ~name:"p1" (fun () -> Sim.Signal.write s 1);
  Sim.Kernel.spawn k ~name:"p2" (fun () -> Sim.Signal.write s 2);
  match Sim.Kernel.run k with
  | () -> Alcotest.fail "expected Delta_race"
  | exception Sim.Kernel.Delta_race r ->
    Alcotest.(check string) "signal" "bus" r.Sim.Kernel.race_signal

let test_same_process_rewrite_no_race () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.set_race_policy k Sim.Kernel.Race_raise;
  let s = Sim.Signal.create k ~name:"bus" 0 in
  Sim.Kernel.spawn k ~name:"p1" (fun () ->
      Sim.Signal.write s 1;
      Sim.Signal.write s 2);
  Sim.Kernel.run k;
  Alcotest.(check int) "last write wins" 2 (Sim.Signal.value s);
  Alcotest.(check (option string)) "writer tracked" (Some "p1")
    (Sim.Signal.last_writer s)

let test_sequential_writes_no_race () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.set_race_policy k Sim.Kernel.Race_raise;
  let s = Sim.Signal.create k ~name:"bus" 0 in
  Sim.Kernel.spawn k ~name:"p1" (fun () -> Sim.Signal.write s 1);
  Sim.Kernel.spawn k ~name:"p2" (fun () ->
      Sim.Kernel.wait_for (Sim.Sim_time.ns 1);
      Sim.Signal.write s 2);
  Sim.Kernel.run k;
  Alcotest.(check int) "both committed in turn" 2 (Sim.Signal.value s)

(* -- Hir.validate extensions ---------------------------------------- *)

let test_validate_cross_category_duplicate () =
  let m =
    fixture
      ~ports:[ ("n", Pin, int_ty 8) ]
      ~arrays:[ ("n", int_ty 8, 4) ]
      [ Wait ]
  in
  match validate m with
  | Ok () -> Alcotest.fail "port/array name clash must be rejected"
  | Error es ->
    Alcotest.(check bool)
      "mentions the duplicate" true
      (List.exists (fun e -> str_contains e "duplicate") es)

let test_validate_local_shadowing () =
  let sub =
    {
      s_name = "f";
      s_params = [ ("total", int_ty 8) ];
      s_ret = None;
      s_locals = [];
      s_body = [];
    }
  in
  let m = fixture ~vars:[ ("total", int_ty 8) ] ~subs:[ sub ] [ Wait ] in
  (match validate m with
  | Ok () -> Alcotest.fail "parameter shadowing a module variable must be rejected"
  | Error _ -> ());
  let sub_dup =
    {
      s_name = "g";
      s_params = [ ("p", int_ty 8) ];
      s_ret = None;
      s_locals = [ ("p", int_ty 8) ];
      s_body = [];
    }
  in
  match validate (fixture ~subs:[ sub_dup ] [ Wait ]) with
  | Ok () -> Alcotest.fail "parameter/local duplicate must be rejected"
  | Error _ -> ()

let test_validate_reversed_for () =
  let m = fixture [ For ("i", 5, 2, [ Wait ]) ] in
  match validate m with
  | Ok () -> Alcotest.fail "reversed For bounds must be rejected"
  | Error es ->
    Alcotest.(check bool)
      "names the loop" true
      (List.exists (fun e -> str_contains e "reversed") es)

(* -- synthesis gate -------------------------------------------------- *)

let test_synthesis_rejects_lint_error () =
  Analysis.Lint.install ();
  let m =
    fixture ~ports:[ ("din", Pin, int_ty 8) ] [ assign "din" (c 0); Wait ]
  in
  (* Structurally valid — only the analysis layer objects. *)
  (match validate m with
  | Ok () -> ()
  | Error es -> Alcotest.failf "validate should accept: %s" (String.concat "; " es));
  match Fossy.Synthesis.synthesise m with
  | Ok _ -> Alcotest.fail "synthesis must reject an E010 module"
  | Error es ->
    Alcotest.(check bool)
      "error names the lint code" true
      (List.exists (fun e -> str_contains e "E010") es)

let test_synthesis_passes_warnings_through () =
  Analysis.Lint.install ();
  match Fossy.Synthesis.synthesise Models.Idwt_cores.idwt53_systemc with
  | Error es -> Alcotest.failf "idwt53 must synthesise: %s" (String.concat "; " es)
  | Ok r ->
    List.iter
      (fun w ->
        Alcotest.(check bool)
          "warnings are warning-severity renderings" true
          (String.length w > 7 && String.sub w 0 7 = "warning"))
      r.Fossy.Synthesis.warnings

(* -- clean-pass properties over the repo's real designs ------------- *)

let test_cores_lint_error_free () =
  List.iter
    (fun (label, hir) -> check_no_errors label (lint hir))
    [
      ("idwt53", Models.Idwt_cores.idwt53_systemc);
      ("idwt97", Models.Idwt_cores.idwt97_systemc);
    ]

let test_references_lint_error_free () =
  List.iter
    (fun (label, d) -> check_no_errors label (Analysis.Lint.lint_design d))
    [
      ("idwt53_ref", Models.Idwt_cores.idwt53_reference);
      ("idwt97_ref", Models.Idwt_cores.idwt97_reference);
    ]

let test_generated_vhdl_lint_error_free () =
  Analysis.Lint.install ();
  List.iter
    (fun (label, hir) ->
      match Fossy.Synthesis.synthesise hir with
      | Error es -> Alcotest.failf "%s: %s" label (String.concat "; " es)
      | Ok r ->
        check_no_errors label (Analysis.Lint.lint_design r.Fossy.Synthesis.vhdl))
    [
      ("idwt53", Models.Idwt_cores.idwt53_systemc);
      ("idwt97", Models.Idwt_cores.idwt97_systemc);
    ]

let test_vta_mappings_deadlock_free () =
  List.iter
    (fun (sw_tasks, idwt_p2p) ->
      check_no_errors
        (Printf.sprintf "mapping tasks=%d p2p=%b" sw_tasks idwt_p2p)
        (Analysis.Lint.lint_vta (Models.Vta_models.mapping ~sw_tasks ~idwt_p2p)))
    [ (1, false); (1, true); (4, false); (4, true) ]

let test_model_variants_race_free () =
  (* The decoder kernels run under Race_raise: finishing at all means
     no same-delta conflicting writes occurred in any of the nine
     versions. *)
  List.iter
    (fun version ->
      match
        Models.Experiment.run ~payload:false version Jpeg2000.Codestream.Lossless
      with
      | (_ : Models.Outcome.t) -> ()
      | exception Sim.Kernel.Delta_race r ->
        Alcotest.failf "%s: delta race on %s (%s vs %s)"
          (Models.Experiment.version_name version)
          r.Sim.Kernel.race_signal r.Sim.Kernel.race_first
          r.Sim.Kernel.race_second)
    Models.Experiment.all_versions

let () =
  Alcotest.run "analysis"
    [
      ( "dataflow",
        [
          Alcotest.test_case "uninit sets" `Quick test_dataflow_uninit_sets;
          Alcotest.test_case "loop-carried liveness" `Quick
            test_dataflow_back_edge_liveness;
        ] );
      ( "hir_lint",
        [
          Alcotest.test_case "W001 uninit var" `Quick test_uninit_var_read;
          Alcotest.test_case "W002 uninit array" `Quick test_uninit_array_read;
          Alcotest.test_case "init clean" `Quick test_uninit_clean_after_write;
          Alcotest.test_case "W003 dead assignment" `Quick test_dead_assignment;
          Alcotest.test_case "port writes live" `Quick test_port_write_never_dead;
          Alcotest.test_case "W004 unreachable stmt" `Quick
            test_unreachable_statement;
          Alcotest.test_case "W005 constant overflow" `Quick
            test_width_constant_overflow;
          Alcotest.test_case "W005 call argument" `Quick test_width_call_argument;
          Alcotest.test_case "constant fits" `Quick test_width_constant_fits;
          Alcotest.test_case "E006 shift width" `Quick test_shift_exceeds_width;
          Alcotest.test_case "W007 sign mix" `Quick
            test_signed_unsigned_comparison;
          Alcotest.test_case "E008 wait-free path" `Quick
            test_wait_free_loop_path;
          Alcotest.test_case "E009 call cycle" `Quick test_call_cycle;
          Alcotest.test_case "acyclic calls clean" `Quick test_call_chain_clean;
          Alcotest.test_case "E010 input write" `Quick test_write_to_input_port;
          Alcotest.test_case "E011 undriven read" `Quick
            test_undriven_output_read;
          Alcotest.test_case "W015 undriven output" `Quick
            test_undriven_output_unread;
        ] );
      ( "fsm_lint",
        [
          Alcotest.test_case "W012 unreachable state" `Quick
            test_fsm_unreachable_state;
          Alcotest.test_case "W013 unread register" `Quick
            test_fsm_unread_register;
        ] );
      ( "vhdl_lint",
        [
          Alcotest.test_case "E010 input driven" `Quick test_vhdl_input_driven;
          Alcotest.test_case "E011/W015 undriven output" `Quick
            test_vhdl_undriven_output;
          Alcotest.test_case "W017 unused signal" `Quick test_vhdl_unused_signal;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "E014 guarded cycle" `Quick
            test_guard_deadlock_cycle;
          Alcotest.test_case "E014 isolated guard" `Quick
            test_guard_deadlock_isolated;
          Alcotest.test_case "plain call breaks deadlock" `Quick
            test_guard_deadlock_clean;
          Alcotest.test_case "wait-graph export" `Quick test_wait_graph_export;
          Alcotest.test_case "E015 race recorded" `Quick
            test_delta_race_recorded;
          Alcotest.test_case "race raises" `Quick test_delta_race_raises;
          Alcotest.test_case "same-process rewrite ok" `Quick
            test_same_process_rewrite_no_race;
          Alcotest.test_case "sequential writes ok" `Quick
            test_sequential_writes_no_race;
        ] );
      ( "validate",
        [
          Alcotest.test_case "cross-category duplicate" `Quick
            test_validate_cross_category_duplicate;
          Alcotest.test_case "local shadowing" `Quick
            test_validate_local_shadowing;
          Alcotest.test_case "reversed for" `Quick test_validate_reversed_for;
        ] );
      ( "gate",
        [
          Alcotest.test_case "lint error blocks synthesis" `Quick
            test_synthesis_rejects_lint_error;
          Alcotest.test_case "warnings pass through" `Quick
            test_synthesis_passes_warnings_through;
        ] );
      ( "clean",
        [
          Alcotest.test_case "cores error-free" `Quick test_cores_lint_error_free;
          Alcotest.test_case "references error-free" `Quick
            test_references_lint_error_free;
          Alcotest.test_case "generated VHDL error-free" `Quick
            test_generated_vhdl_lint_error_free;
          Alcotest.test_case "VTA mappings deadlock-free" `Quick
            test_vta_mappings_deadlock_free;
          Alcotest.test_case "nine variants race-free" `Quick
            test_model_variants_race_free;
        ] );
    ]
