(* Telemetry layer: JSON emitter, metrics, sink semantics, span
   nesting, exporters, and the end-to-end contracts against the
   decoder models (coverage, idwt span union = idwt_ms, disabled sink
   leaves outcomes bit-identical). *)

let lossless = Jpeg2000.Codestream.Lossless

(* -- Json ----------------------------------------------------------- *)

let test_json_scalars () =
  let s v = Telemetry.Json.to_string v in
  Alcotest.(check string) "null" "null" (s Telemetry.Json.Null);
  Alcotest.(check string) "true" "true" (s (Telemetry.Json.Bool true));
  Alcotest.(check string) "int" "-42" (s (Telemetry.Json.Int (-42)));
  Alcotest.(check string) "float" "1.5" (s (Telemetry.Json.Float 1.5));
  Alcotest.(check string) "nan is null" "null"
    (s (Telemetry.Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (s (Telemetry.Json.Float Float.infinity))

let test_json_strings () =
  let s v = Telemetry.Json.to_string v in
  Alcotest.(check string) "plain" {|"abc"|} (s (Telemetry.Json.Str "abc"));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (s (Telemetry.Json.Str "a\"b\\c\nd"))

let test_json_nested () =
  let v =
    Telemetry.Json.Obj
      [
        ("xs", Telemetry.Json.List [ Telemetry.Json.Int 1; Telemetry.Json.Int 2 ]);
        ("o", Telemetry.Json.Obj []);
      ]
  in
  Alcotest.(check string) "nested" {|{"xs":[1,2],"o":{}}|}
    (Telemetry.Json.to_string v)

let test_json_parse_roundtrip () =
  let docs =
    [
      Telemetry.Json.Null;
      Telemetry.Json.Bool false;
      Telemetry.Json.Int (-7);
      Telemetry.Json.Float 2.5;
      Telemetry.Json.Str "a\"b\\c\nd";
      Telemetry.Json.List
        [ Telemetry.Json.Int 1; Telemetry.Json.Str "x"; Telemetry.Json.Null ];
      Telemetry.Json.Obj
        [
          ("k", Telemetry.Json.List []);
          ("o", Telemetry.Json.Obj [ ("n", Telemetry.Json.Int 3) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Telemetry.Json.to_string v in
      match Telemetry.Json.parse s with
      | Ok v' -> Alcotest.(check bool) s true (v = v')
      | Error e -> Alcotest.failf "parse %s: %s" s e)
    docs

let test_json_parse_errors () =
  let rejected s =
    match Telemetry.Json.parse s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) true (rejected s))
    [ ""; "{"; "[1,]"; "nul"; {|{"a":1|}; "1 2"; {|"unterminated|} ]

let test_json_accessors () =
  match Telemetry.Json.parse {|{"a":{"b":[1,2.5,"s"]},"n":4}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v ->
    let open Telemetry.Json in
    Alcotest.(check (option int)) "int" (Some 4)
      (Option.bind (member "n" v) to_int_opt);
    Alcotest.(check (option (float 0.))) "int as float" (Some 4.)
      (Option.bind (member "n" v) to_float_opt);
    let xs =
      Option.bind (member "a" v) (member "b")
      |> Fun.flip Option.bind to_list_opt
      |> Option.value ~default:[]
    in
    Alcotest.(check int) "list length" 3 (List.length xs);
    Alcotest.(check (option string)) "string" (Some "s")
      (to_string_opt (List.nth xs 2));
    Alcotest.(check (option int)) "missing member" None
      (Option.bind (member "zz" v) to_int_opt)

(* -- Metrics -------------------------------------------------------- *)

let test_metrics_counters_gauges () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr m "a";
  Telemetry.Metrics.incr m ~by:4 "a";
  Telemetry.Metrics.incr m "b";
  Telemetry.Metrics.set m "g" 7;
  Telemetry.Metrics.set m "g" 9;
  Alcotest.(check int) "counter a" 5 (Telemetry.Metrics.counter m "a");
  Alcotest.(check int) "counter absent" 0 (Telemetry.Metrics.counter m "zz");
  Alcotest.(check (list (pair string int))) "counters sorted"
    [ ("a", 5); ("b", 1) ]
    (Telemetry.Metrics.counters m);
  Alcotest.(check (list (pair string int))) "gauge last-write-wins"
    [ ("g", 9) ]
    (Telemetry.Metrics.gauges m)

let test_metrics_dist () =
  let m = Telemetry.Metrics.create () in
  List.iter (Telemetry.Metrics.observe m "d") [ 0; 1; 3; 1000 ];
  match Telemetry.Metrics.dists m with
  | [ ("d", d) ] ->
    Alcotest.(check int) "count" 4 d.Telemetry.Metrics.d_count;
    Alcotest.(check int) "sum" 1004 d.Telemetry.Metrics.d_sum;
    Alcotest.(check int) "min" 0 d.Telemetry.Metrics.d_min;
    Alcotest.(check int) "max" 1000 d.Telemetry.Metrics.d_max
  | other -> Alcotest.failf "unexpected dists (%d)" (List.length other)

let test_metrics_buckets () =
  Alcotest.(check int) "0" 0 (Telemetry.Metrics.bucket_index 0);
  Alcotest.(check int) "1" 1 (Telemetry.Metrics.bucket_index 1);
  Alcotest.(check int) "2" 2 (Telemetry.Metrics.bucket_index 2);
  Alcotest.(check int) "3" 2 (Telemetry.Metrics.bucket_index 3);
  Alcotest.(check int) "4" 3 (Telemetry.Metrics.bucket_index 4);
  let lo, hi = Telemetry.Metrics.bucket_bounds 3 in
  Alcotest.(check (pair int int)) "bounds 3" (4, 8) (lo, hi)

let test_metrics_exemplars () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.observe m "d" 100;
  Alcotest.(check int) "no exemplar captured without one" 0
    (match Telemetry.Metrics.dists m with
    | [ (_, d) ] -> List.length (Telemetry.Metrics.exemplars d)
    | _ -> -1);
  (* Same bucket [64,128): the largest sample wins, first wins a tie. *)
  Telemetry.Metrics.observe m ~exemplar:(1, "t1") "d" 90;
  Telemetry.Metrics.observe m ~exemplar:(2, "t2") "d" 120;
  Telemetry.Metrics.observe m ~exemplar:(3, "t3") "d" 120;
  Telemetry.Metrics.observe m ~exemplar:(4, "t4") "d" 70;
  (* A different bucket keeps its own exemplar. *)
  Telemetry.Metrics.observe m ~exemplar:(5, "t5") "d" 3;
  match Telemetry.Metrics.dists m with
  | [ ("d", d) ] -> (
    match Telemetry.Metrics.exemplars d with
    | [ (b_small, small); (b_large, large) ] ->
      Alcotest.(check int) "small bucket" (Telemetry.Metrics.bucket_index 3)
        b_small;
      Alcotest.(check int) "small id" 5 small.Telemetry.Metrics.ex_id;
      Alcotest.(check int) "large bucket" (Telemetry.Metrics.bucket_index 120)
        b_large;
      Alcotest.(check int) "largest sample wins" 120
        large.Telemetry.Metrics.ex_value;
      Alcotest.(check int) "first occurrence wins the tie" 2
        large.Telemetry.Metrics.ex_id;
      Alcotest.(check string) "trace carried" "t2"
        large.Telemetry.Metrics.ex_trace
    | ex -> Alcotest.failf "expected 2 exemplars, got %d" (List.length ex))
  | other -> Alcotest.failf "unexpected dists (%d)" (List.length other)

let test_report_quantiles_and_exemplars () =
  let m = Telemetry.Metrics.create () in
  (* 99 small samples and one huge one: p50 sits low, p99 lands on the
     big sample's bucket and resolves to its exemplar. *)
  for i = 1 to 99 do
    Telemetry.Metrics.observe m ~exemplar:(i, "lo") "lat" 10
  done;
  Telemetry.Metrics.observe m ~exemplar:(999, "hi") "lat" 5000;
  let r = Telemetry.Report.of_metrics m in
  match Telemetry.Report.dist r "lat" with
  | None -> Alcotest.fail "dist missing"
  | Some d ->
    let lo_bound, _ = Telemetry.Metrics.bucket_bounds (Telemetry.Metrics.bucket_index 10) in
    let hi_bound, _ = Telemetry.Metrics.bucket_bounds (Telemetry.Metrics.bucket_index 5000) in
    Alcotest.(check (option int)) "p50 bucket" (Some lo_bound)
      (Telemetry.Report.quantile_bucket d 0.5);
    Alcotest.(check (option int)) "p99 bucket... p100" (Some hi_bound)
      (Telemetry.Report.quantile_bucket d 1.0);
    (match Telemetry.Report.quantile_exemplar d 1.0 with
    | Some e ->
      Alcotest.(check int) "p100 exemplar id" 999 e.Telemetry.Metrics.ex_id;
      Alcotest.(check string) "p100 exemplar trace" "hi"
        e.Telemetry.Metrics.ex_trace
    | None -> Alcotest.fail "p100 exemplar missing");
    (* Exemplars survive the JSON export. *)
    let s = Telemetry.Json.to_string (Telemetry.Report.to_json r) in
    Alcotest.(check bool) "exemplars in json" true
      (Str_util.contains s {|"exemplars"|})

let test_report_dropped_events_counter () =
  let sink, () =
    Telemetry.Sink.with_sink ~capacity:3 (fun () ->
        for i = 1 to 10 do
          Telemetry.Span.instant ~ts_ps:i ~track:"t" "e"
        done)
  in
  let r = Telemetry.Sink.report sink in
  Alcotest.(check int) "dropped surfaces as a counter" 7
    (Telemetry.Report.counter r "telemetry.dropped_events");
  (* Reporting twice must not double-count. *)
  Alcotest.(check int) "stable across reports" 7
    (Telemetry.Report.counter (Telemetry.Sink.report sink)
       "telemetry.dropped_events")

(* -- Event ---------------------------------------------------------- *)

let span ?(track = "t") ?(name = "s") ?(cat = "c") ts dur =
  {
    Telemetry.Event.ts_ps = ts;
    track;
    name;
    cat;
    phase = Telemetry.Event.Complete dur;
    args = [];
  }

let test_event_union () =
  Alcotest.(check int) "empty" 0 (Telemetry.Event.union_ps []);
  Alcotest.(check int) "disjoint" 20
    (Telemetry.Event.union_ps [ span 0 10; span 100 10 ]);
  Alcotest.(check int) "overlap once" 15
    (Telemetry.Event.union_ps [ span 0 10; span 5 10 ]);
  Alcotest.(check int) "nested" 10
    (Telemetry.Event.union_ps [ span 0 10; span 2 3 ]);
  Alcotest.(check int) "adjacent" 20
    (Telemetry.Event.union_ps [ span 0 10; span 10 10 ])

(* -- Profile -------------------------------------------------------- *)

let test_profile_nesting_and_merge () =
  let events =
    [
      span ~track:"t" ~name:"outer" 0 100;
      span ~track:"t" ~name:"a" 10 20;
      span ~track:"t" ~name:"a" 40 10;
      span ~track:"t" ~name:"b" 60 5;
      span ~track:"t" ~name:"leaf" 12 4;
      span ~track:"u" ~name:"x" 0 7;
    ]
  in
  let p = Telemetry.Profile.of_events events in
  Alcotest.(check (list string)) "tracks sorted" [ "t"; "u" ]
    (Telemetry.Profile.tracks p);
  Alcotest.(check bool) "invariant" true (Telemetry.Profile.invariant p);
  Alcotest.(check int) "total over roots" 107 (Telemetry.Profile.total_ps p);
  let node path =
    match Telemetry.Profile.find p path with
    | Some n -> n
    | None -> Alcotest.failf "missing node %s" path
  in
  let outer = node "t;outer" in
  Alcotest.(check int) "outer total" 100 outer.Telemetry.Profile.total_ps;
  Alcotest.(check int) "outer self excludes children" 65
    outer.Telemetry.Profile.self_ps;
  let a = node "t;outer;a" in
  Alcotest.(check int) "same-name siblings merge: count" 2
    a.Telemetry.Profile.count;
  Alcotest.(check int) "merged total" 30 a.Telemetry.Profile.total_ps;
  Alcotest.(check int) "merged self excludes grandchild" 26
    a.Telemetry.Profile.self_ps;
  Alcotest.(check int) "nested leaf" 4
    (node "t;outer;a;leaf").Telemetry.Profile.total_ps;
  Alcotest.(check (option string)) "absent path" None
    (Option.map
       (fun n -> n.Telemetry.Profile.name)
       (Telemetry.Profile.find p "t;outer;zz"))

let test_profile_collapsed_and_top () =
  let events =
    [ span ~track:"t" ~name:"outer" 0 100; span ~track:"t" ~name:"a" 10 20 ]
  in
  let p = Telemetry.Profile.of_events events in
  Alcotest.(check string) "collapsed lines sorted, newline-terminated"
    "t;outer 80\nt;outer;a 20\n"
    (Telemetry.Profile.collapsed p);
  Alcotest.(check (list (pair string int))) "top_self self-desc"
    [ ("t;outer", 80); ("t;outer;a", 20) ]
    (Telemetry.Profile.top_self ~n:5 p);
  Alcotest.(check (list (pair string int))) "top_self truncates"
    [ ("t;outer", 80) ]
    (Telemetry.Profile.top_self ~n:1 p)

let test_profile_synthetic () =
  let p = Telemetry.Profile.of_events [ span ~track:"t" ~name:"s" 0 10 ] in
  let p =
    Telemetry.Profile.add_synthetic p ~track:"t1"
      [ ([ "cleanup" ], 500, 3); ([ "refine" ], 200, 1) ]
  in
  Alcotest.(check (list string)) "synthetic track grafted" [ "t"; "t1" ]
    (Telemetry.Profile.tracks p);
  Alcotest.(check bool) "invariant" true (Telemetry.Profile.invariant p);
  Alcotest.(check int) "leaf self" 500
    (match Telemetry.Profile.find p "t1;cleanup" with
    | Some n -> n.Telemetry.Profile.self_ps
    | None -> -1);
  (* Re-grafting the same track replaces it rather than accumulating. *)
  let p = Telemetry.Profile.add_synthetic p ~track:"t1" [ ([ "cleanup" ], 9, 1) ] in
  Alcotest.(check int) "replaced" 9
    (match Telemetry.Profile.find p "t1;cleanup" with
    | Some n -> n.Telemetry.Profile.self_ps
    | None -> -1)

(* Random well-nested span forest: recursively carve each interval into
   disjoint child sub-intervals, drawing names from a small pool so
   same-name merges happen. Returns the events and the exact total of
   the top-level spans. *)
let gen_nested_spans seed =
  let rng = Faults.Rng.create seed in
  let events = ref [] in
  let rec go depth start len =
    let name = Printf.sprintf "n%d" (Faults.Rng.int rng 4) in
    events := span ~track:"t" ~name start len :: !events;
    if depth < 4 && len > 6 then begin
      let pos = ref (start + Faults.Rng.int rng 3) in
      let stop = start + len in
      for _ = 1 to Faults.Rng.int rng 4 do
        let room = stop - !pos in
        if room > 2 then begin
          let child_len = 1 + Faults.Rng.int rng (room - 1) in
          go (depth + 1) !pos child_len;
          pos := !pos + child_len + Faults.Rng.int rng 3
        end
      done
    end
  in
  let pos = ref 0 in
  let top_total = ref 0 in
  for _ = 1 to 1 + Faults.Rng.int rng 4 do
    let len = 8 + Faults.Rng.int rng 120 in
    go 0 !pos len;
    top_total := !top_total + len;
    pos := !pos + len + 1 + Faults.Rng.int rng 6
  done;
  (!events, !top_total)

let prop_profile_tree_invariant =
  QCheck.Test.make ~name:"cost tree: total = self + sum of children" ~count:200
    QCheck.small_int (fun seed ->
      let events, top_total = gen_nested_spans seed in
      let p = Telemetry.Profile.of_events events in
      (* The invariant must hold on every node, the track total must be
         exactly the top-level spans' total, and the collapsed export
         must not depend on event order. *)
      Telemetry.Profile.invariant p
      && Telemetry.Profile.total_ps p = top_total
      && Telemetry.Profile.collapsed p
         = Telemetry.Profile.collapsed
             (Telemetry.Profile.of_events (List.rev events)))

(* -- Sink ----------------------------------------------------------- *)

let test_sink_disabled_noops () =
  Telemetry.Sink.uninstall ();
  Alcotest.(check bool) "disabled" false (Telemetry.Sink.enabled ());
  (* All hooks must be silent no-ops without a sink. *)
  Telemetry.Sink.incr "x";
  Telemetry.Sink.observe "y" 1;
  Telemetry.Sink.set_gauge "z" 2;
  Telemetry.Span.complete ~ts_ps:0 ~dur_ps:5 "s";
  Telemetry.Span.instant ~ts_ps:0 "i";
  Telemetry.Span.begin_ ~ts_ps:0 "b";
  Telemetry.Span.end_ ~ts_ps:1 ()

let test_sink_capacity () =
  let sink, () =
    Telemetry.Sink.with_sink ~capacity:3 (fun () ->
        for i = 1 to 10 do
          Telemetry.Span.instant ~ts_ps:i ~track:"t" "e"
        done)
  in
  Alcotest.(check int) "kept" 3 (Telemetry.Sink.event_count sink);
  Alcotest.(check int) "dropped" 7 (Telemetry.Sink.dropped sink);
  Alcotest.(check (list int)) "most recent survive" [ 8; 9; 10 ]
    (List.map
       (fun e -> e.Telemetry.Event.ts_ps)
       (Telemetry.Sink.events sink));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Telemetry.Sink.create: capacity <= 0") (fun () ->
      ignore (Telemetry.Sink.create ~capacity:0 ()))

let test_sink_begin_end () =
  let sink, () =
    Telemetry.Sink.with_sink (fun () ->
        Telemetry.Span.begin_ ~ts_ps:0 ~track:"t" ~cat:"stage" "outer";
        Telemetry.Span.begin_ ~ts_ps:10 ~track:"t" "inner";
        Telemetry.Span.end_ ~ts_ps:20 ~track:"t" ();
        Telemetry.Span.end_ ~ts_ps:100 ~track:"t" ())
  in
  match Telemetry.Sink.events sink with
  | [ inner; outer ] ->
    (* Spans are recorded when they close: inner first. *)
    Alcotest.(check string) "inner name" "inner" inner.Telemetry.Event.name;
    Alcotest.(check int) "inner dur" 10 (Telemetry.Event.duration_ps inner);
    Alcotest.(check string) "outer name" "outer" outer.Telemetry.Event.name;
    Alcotest.(check int) "outer start" 0 outer.Telemetry.Event.ts_ps;
    Alcotest.(check int) "outer dur" 100 (Telemetry.Event.duration_ps outer)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_sink_unmatched_end () =
  (match
     Telemetry.Sink.with_sink (fun () ->
         Telemetry.Span.end_ ~ts_ps:5 ~track:"t" ())
   with
  | _ -> Alcotest.fail "unmatched end_ accepted"
  | exception Invalid_argument _ -> ());
  (* The failed with_sink must not leave its sink installed. *)
  Alcotest.(check bool) "sink restored" false (Telemetry.Sink.enabled ())

let test_sink_context_default_track () =
  let sink, () =
    Telemetry.Sink.with_sink (fun () ->
        Telemetry.Span.instant ~ts_ps:0 "no-context";
        (match Telemetry.Sink.active () with
        | Some s -> Telemetry.Sink.set_context s (Some "proc-a")
        | None -> assert false);
        Telemetry.Span.instant ~ts_ps:1 "with-context")
  in
  Alcotest.(check (list string)) "tracks" [ "main"; "proc-a" ]
    (Telemetry.Event.tracks (Telemetry.Sink.events sink))

(* -- exporters ------------------------------------------------------ *)

let test_chrome_export () =
  let events = [ span ~track:"a" 1_000_000 2_000_000; span ~track:"b" 0 500 ] in
  let s = Telemetry.Chrome.to_string events in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_util.contains s fragment))
    [
      {|"traceEvents":[|};
      {|"thread_name"|};
      {|"process_name"|};
      {|"ph":"X"|};
      (* 1_000_000 ps = 1 us *)
      {|"ts":1|};
    ]

let test_vcd_export () =
  let events = [ span ~track:"a b" 0 10; span ~track:"a b" 2 3 ] in
  let s = Telemetry.Vcd_export.render events in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_util.contains s fragment))
    [ "$timescale 1ps $end"; "a_b"; "$dumpvars"; "#0"; "#2"; "#5"; "#10" ];
  Alcotest.(check string) "sanitize" "x_y.z_2"
    (Telemetry.Vcd_export.sanitize "x y.z-2")

(* -- end-to-end against the decoder models -------------------------- *)

let traced_v7b =
  lazy
    (Telemetry.Sink.with_sink (fun () ->
         Models.Experiment.run ~payload:false Models.Experiment.V7b lossless))

let ps_of_ms ms = int_of_float ((ms *. 1e9) +. 0.5)

let test_trace_tracks () =
  let sink, _ = Lazy.force traced_v7b in
  let tracks = Telemetry.Event.tracks (Telemetry.Sink.events sink) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("track " ^ expected) true
        (List.mem expected tracks))
    [ "opb"; "microblaze0"; "idwt53.filter"; "hwsw_so" ]

let test_trace_coverage () =
  let sink, outcome = Lazy.force traced_v7b in
  let events = Telemetry.Sink.events sink in
  let decode_ps = ps_of_ms outcome.Models.Outcome.decode_ms in
  let union = Telemetry.Event.union_ps events in
  Alcotest.(check bool)
    (Printf.sprintf "spans cover >= 95%% of decode time (%d/%d)" union
       decode_ps)
    true
    (float_of_int union >= 0.95 *. float_of_int decode_ps);
  Alcotest.(check bool) "no span overruns the run" true
    (List.for_all
       (fun e ->
         e.Telemetry.Event.ts_ps + Telemetry.Event.duration_ps e <= decode_ps)
       events)

(* Per-track spans must form properly nested intervals: sorted by
   (start asc, duration desc), each span either nests inside the
   innermost open one or starts after it ends. *)
let check_nesting track spans =
  let sorted =
    List.sort
      (fun a b ->
        let sa = a.Telemetry.Event.ts_ps and sb = b.Telemetry.Event.ts_ps in
        if sa <> sb then compare sa sb
        else
          compare
            (Telemetry.Event.duration_ps b)
            (Telemetry.Event.duration_ps a))
      spans
  in
  let stack = ref [] in
  List.iter
    (fun s ->
      let s_start = s.Telemetry.Event.ts_ps in
      let s_end = s_start + Telemetry.Event.duration_ps s in
      let rec pop () =
        match !stack with
        | top_end :: rest when top_end <= s_start ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
      | top_end :: _ when s_end > top_end ->
        Alcotest.failf
          "track %s: span %s [%d,%d) partially overlaps an open span ending %d"
          track s.Telemetry.Event.name s_start s_end top_end
      | _ -> ());
      stack := s_end :: !stack)
    sorted

let test_trace_nesting () =
  let sink, _ = Lazy.force traced_v7b in
  let events = Telemetry.Sink.events sink in
  List.iter
    (fun track -> check_nesting track (Telemetry.Event.spans ~track events))
    (Telemetry.Event.tracks events)

let test_trace_metrics_consistent () =
  let sink, outcome = Lazy.force traced_v7b in
  let report = outcome.Models.Outcome.telemetry in
  let decode_ps = ps_of_ms outcome.Models.Outcome.decode_ms in
  (* The bus can't be busy longer than the whole run. *)
  let bus_busy = Telemetry.Report.dist_sum report "lock.opb.held_ps" in
  Alcotest.(check bool) "bus exercised" true (bus_busy > 0);
  Alcotest.(check bool)
    (Printf.sprintf "bus busy (%d) <= decode (%d)" bus_busy decode_ps)
    true (bus_busy <= decode_ps);
  (* Union of "idwt" stage spans is the meter's idwt_ms, exactly. *)
  let idwt_union =
    Telemetry.Event.union_ps
      (Telemetry.Event.spans ~name:"idwt" ~cat:"stage"
         (Telemetry.Sink.events sink))
  in
  let idwt_ps = ps_of_ms outcome.Models.Outcome.idwt_ms in
  Alcotest.(check bool)
    (Printf.sprintf "idwt span union (%d) = idwt_ms (%d)" idwt_union idwt_ps)
    true
    (abs (idwt_union - idwt_ps) <= 1000);
  (* Kernel gauges were snapshotted into the report. *)
  Alcotest.(check bool) "delta cycles gauge" true
    (match Telemetry.Report.gauge report "kernel.delta_cycles" with
    | Some n -> n > 0
    | None -> false);
  (* Grant counters exist for the bus masters. *)
  Alcotest.(check bool) "opb grants counted" true
    (Telemetry.Report.counter_sum report ~prefix:"lock.opb.grants." > 0)

let test_sink_does_not_perturb_models () =
  Telemetry.Sink.uninstall ();
  List.iter
    (fun version ->
      let plain = Models.Experiment.run ~payload:false version lossless in
      let _sink, traced =
        Telemetry.Sink.with_sink (fun () ->
            Models.Experiment.run ~payload:false version lossless)
      in
      Alcotest.(check bool)
        (Models.Experiment.version_name version
        ^ " outcome bit-identical modulo telemetry")
        true
        ({ traced with Models.Outcome.telemetry = Telemetry.Report.empty }
        = plain))
    Models.Experiment.all_versions

let test_outcome_json () =
  let _sink, outcome = Lazy.force traced_v7b in
  let s = Telemetry.Json.to_string (Models.Outcome.to_json outcome) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_util.contains s fragment))
    [
      {|"version":"7b"|};
      {|"mode":"lossless"|};
      {|"decode_ms":|};
      {|"telemetry":{"counters":|};
      {|"lock.opb.grants.|};
    ]

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "strings" `Quick test_json_strings;
          Alcotest.test_case "nested" `Quick test_json_nested;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "dist" `Quick test_metrics_dist;
          Alcotest.test_case "buckets" `Quick test_metrics_buckets;
          Alcotest.test_case "exemplars" `Quick test_metrics_exemplars;
          Alcotest.test_case "report quantiles and exemplars" `Quick
            test_report_quantiles_and_exemplars;
          Alcotest.test_case "dropped events counter" `Quick
            test_report_dropped_events_counter;
        ] );
      ("event", [ Alcotest.test_case "interval union" `Quick test_event_union ]);
      ( "profile",
        [
          Alcotest.test_case "nesting and merge" `Quick
            test_profile_nesting_and_merge;
          Alcotest.test_case "collapsed and top_self" `Quick
            test_profile_collapsed_and_top;
          Alcotest.test_case "synthetic tracks" `Quick test_profile_synthetic;
          QCheck_alcotest.to_alcotest prop_profile_tree_invariant;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_sink_disabled_noops;
          Alcotest.test_case "capacity ring" `Quick test_sink_capacity;
          Alcotest.test_case "begin/end pairing" `Quick test_sink_begin_end;
          Alcotest.test_case "unmatched end" `Quick test_sink_unmatched_end;
          Alcotest.test_case "context default track" `Quick
            test_sink_context_default_track;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome" `Quick test_chrome_export;
          Alcotest.test_case "vcd" `Quick test_vcd_export;
        ] );
      ( "models",
        [
          Alcotest.test_case "v7b trace tracks" `Quick test_trace_tracks;
          Alcotest.test_case "v7b coverage >= 95%" `Quick test_trace_coverage;
          Alcotest.test_case "per-track nesting" `Quick test_trace_nesting;
          Alcotest.test_case "metrics consistent with outcome" `Quick
            test_trace_metrics_consistent;
          Alcotest.test_case "sink does not perturb outcomes" `Quick
            test_sink_does_not_perturb_models;
          Alcotest.test_case "outcome json" `Quick test_outcome_json;
        ] );
    ]
