(* Tests for the JPEG 2000 codec substrate. *)

let qc = QCheck_alcotest.to_alcotest

(* -- Image --------------------------------------------------------- *)

let test_image_basics () =
  let img = Jpeg2000.Image.create ~width:8 ~height:4 ~components:3 () in
  Alcotest.(check int) "width" 8 (Jpeg2000.Image.width img);
  Alcotest.(check int) "height" 4 (Jpeg2000.Image.height img);
  Alcotest.(check int) "components" 3 (Jpeg2000.Image.components img);
  Alcotest.(check int) "max sample" 255 (Jpeg2000.Image.max_sample img);
  Jpeg2000.Image.plane_set img.Jpeg2000.Image.planes.(1) ~x:7 ~y:3 200;
  Alcotest.(check int) "set/get" 200
    (Jpeg2000.Image.plane_get img.Jpeg2000.Image.planes.(1) ~x:7 ~y:3)

let test_image_metrics () =
  let a = Jpeg2000.Image.gradient ~width:16 ~height:16 ~components:1 in
  Alcotest.(check bool) "identical psnr infinite" true
    (Jpeg2000.Image.psnr a a = infinity);
  let b = Jpeg2000.Image.create ~width:16 ~height:16 ~components:1 () in
  Array.blit a.Jpeg2000.Image.planes.(0).Jpeg2000.Image.data 0
    b.Jpeg2000.Image.planes.(0).Jpeg2000.Image.data 0 256;
  Jpeg2000.Image.plane_set b.Jpeg2000.Image.planes.(0) ~x:0 ~y:0
    (Jpeg2000.Image.plane_get a.Jpeg2000.Image.planes.(0) ~x:0 ~y:0 + 16);
  Alcotest.(check (float 1e-9)) "mse of one error" (256.0 /. 256.0)
    (Jpeg2000.Image.mse a b)

let test_generators_in_range () =
  let check_img img =
    Array.iter
      (fun p ->
        Array.iter
          (fun v -> if v < 0 || v > 255 then Alcotest.fail "out of range")
          p.Jpeg2000.Image.data)
      img.Jpeg2000.Image.planes
  in
  check_img (Jpeg2000.Image.gradient ~width:33 ~height:17 ~components:3);
  check_img (Jpeg2000.Image.checkerboard ~width:33 ~height:17 ~components:1 ());
  check_img (Jpeg2000.Image.noise ~width:33 ~height:17 ~components:2 ~seed:3);
  check_img (Jpeg2000.Image.smooth ~width:33 ~height:17 ~components:3 ~seed:5)

let test_generators_deterministic () =
  let a = Jpeg2000.Image.smooth ~width:16 ~height:16 ~components:3 ~seed:11 in
  let b = Jpeg2000.Image.smooth ~width:16 ~height:16 ~components:3 ~seed:11 in
  Alcotest.(check bool) "same seed, same image" true (Jpeg2000.Image.equal a b);
  let c = Jpeg2000.Image.smooth ~width:16 ~height:16 ~components:3 ~seed:12 in
  Alcotest.(check bool) "different seed differs" false (Jpeg2000.Image.equal a c)

let test_pnm_roundtrip () =
  let grey = Jpeg2000.Image.gradient ~width:13 ~height:7 ~components:1 in
  Alcotest.(check bool) "pgm" true
    (Jpeg2000.Image.equal grey (Jpeg2000.Image.of_pnm (Jpeg2000.Image.to_pnm grey)));
  let colour = Jpeg2000.Image.smooth ~width:13 ~height:7 ~components:3 ~seed:2 in
  Alcotest.(check bool) "ppm" true
    (Jpeg2000.Image.equal colour (Jpeg2000.Image.of_pnm (Jpeg2000.Image.to_pnm colour)))

let test_pnm_rejects_garbage () =
  let raised s = try ignore (Jpeg2000.Image.of_pnm s); false with Failure _ -> true in
  Alcotest.(check bool) "bad magic" true (raised "P9\n2 2\n255\nxxxx");
  Alcotest.(check bool) "truncated" true (raised "P5\n4 4\n255\nab")

(* -- Tile ---------------------------------------------------------- *)

let test_tile_split_assemble () =
  let img = Jpeg2000.Image.smooth ~width:50 ~height:30 ~components:3 ~seed:1 in
  let tiles = Jpeg2000.Tile.split img ~tile_w:16 ~tile_h:16 in
  Alcotest.(check int) "tile count" (4 * 2) (List.length tiles);
  let back =
    Jpeg2000.Tile.assemble ~width:50 ~height:30 ~components:3 tiles
  in
  Alcotest.(check bool) "assemble inverts split" true
    (Jpeg2000.Image.equal img back)

let test_tile_border_sizes () =
  let img = Jpeg2000.Image.gradient ~width:50 ~height:30 ~components:1 in
  let tiles = Jpeg2000.Tile.split img ~tile_w:16 ~tile_h:16 in
  let last = List.nth tiles (List.length tiles - 1) in
  Alcotest.(check int) "border width" 2 (Jpeg2000.Tile.width last);
  Alcotest.(check int) "border height" 14 (Jpeg2000.Tile.height last);
  Alcotest.(check int) "samples" (2 * 14) (Jpeg2000.Tile.samples last)

let tile_roundtrip_qcheck =
  QCheck.Test.make ~name:"tile split/assemble is identity" ~count:50
    QCheck.(
      quad (int_range 1 40) (int_range 1 40) (int_range 1 17) (int_range 1 17))
    (fun (w, h, tw, th) ->
      let img = Jpeg2000.Image.noise ~width:w ~height:h ~components:2 ~seed:(w + h) in
      let tiles = Jpeg2000.Tile.split img ~tile_w:tw ~tile_h:th in
      Jpeg2000.Image.equal img
        (Jpeg2000.Tile.assemble ~width:w ~height:h ~components:2 tiles))

(* -- Colour -------------------------------------------------------- *)

let test_dc_shift () =
  let samples = [| 0; 128; 255 |] in
  Jpeg2000.Colour.dc_shift_forward ~bit_depth:8 samples;
  Alcotest.(check (array int)) "shifted" [| -128; 0; 127 |] samples;
  Jpeg2000.Colour.dc_shift_inverse ~bit_depth:8 samples;
  Alcotest.(check (array int)) "restored" [| 0; 128; 255 |] samples

let test_dc_shift_clamps () =
  let samples = [| -300; 300 |] in
  Jpeg2000.Colour.dc_shift_inverse ~bit_depth:8 samples;
  Alcotest.(check (array int)) "clamped" [| 0; 255 |] samples

let rct_roundtrip_qcheck =
  QCheck.Test.make ~name:"RCT is exactly reversible" ~count:300
    QCheck.(triple (int_range (-128) 127) (int_range (-128) 127) (int_range (-128) 127))
    (fun (r0, g0, b0) ->
      let r = [| r0 |] and g = [| g0 |] and b = [| b0 |] in
      Jpeg2000.Colour.rct_forward r g b;
      Jpeg2000.Colour.rct_inverse r g b;
      r.(0) = r0 && g.(0) = g0 && b.(0) = b0)

let ict_roundtrip_qcheck =
  QCheck.Test.make ~name:"ICT round-trips within 1e-10" ~count:300
    QCheck.(
      triple (float_range (-128.0) 127.0) (float_range (-128.0) 127.0)
        (float_range (-128.0) 127.0))
    (fun (r0, g0, b0) ->
      let r = [| r0 |] and g = [| g0 |] and b = [| b0 |] in
      Jpeg2000.Colour.ict_forward r g b;
      Jpeg2000.Colour.ict_inverse r g b;
      Float.abs (r.(0) -. r0) < 1e-10
      && Float.abs (g.(0) -. g0) < 1e-10
      && Float.abs (b.(0) -. b0) < 1e-10)

(* -- Subband geometry ---------------------------------------------- *)

let test_subband_decompose () =
  let bands = Jpeg2000.Subband.decompose ~width:32 ~height:32 ~levels:2 in
  Alcotest.(check int) "1 LL + 2x3 details" 7 (List.length bands);
  (match bands with
  | ll :: _ ->
    Alcotest.(check int) "LL level" 2 ll.Jpeg2000.Subband.level;
    Alcotest.(check int) "LL width" 8 ll.Jpeg2000.Subband.w
  | [] -> Alcotest.fail "no bands");
  (* Bands must tile the full rectangle without overlap. *)
  let covered = Array.make (32 * 32) 0 in
  List.iter
    (fun b ->
      for y = b.Jpeg2000.Subband.y0 to b.Jpeg2000.Subband.y0 + b.Jpeg2000.Subband.h - 1 do
        for x = b.Jpeg2000.Subband.x0 to b.Jpeg2000.Subband.x0 + b.Jpeg2000.Subband.w - 1 do
          covered.((y * 32) + x) <- covered.((y * 32) + x) + 1
        done
      done)
    bands;
  Alcotest.(check bool) "exact cover" true (Array.for_all (fun c -> c = 1) covered)

let subband_cover_qcheck =
  QCheck.Test.make ~name:"subbands partition the tile for any size" ~count:100
    QCheck.(triple (int_range 1 40) (int_range 1 40) (int_range 0 4))
    (fun (w, h, levels) ->
      let bands = Jpeg2000.Subband.decompose ~width:w ~height:h ~levels in
      let covered = Array.make (w * h) 0 in
      List.iter
        (fun b ->
          for y = b.Jpeg2000.Subband.y0 to b.Jpeg2000.Subband.y0 + b.Jpeg2000.Subband.h - 1 do
            for x = b.Jpeg2000.Subband.x0 to b.Jpeg2000.Subband.x0 + b.Jpeg2000.Subband.w - 1 do
              covered.((y * w) + x) <- covered.((y * w) + x) + 1
            done
          done)
        bands;
      Array.for_all (fun c -> c = 1) covered)

(* -- DWT ------------------------------------------------------------ *)

let test_dwt53_known_line () =
  (* A constant line must produce constant lows and zero highs. *)
  let out = Jpeg2000.Dwt53.forward_1d (Array.make 8 10) in
  Alcotest.(check (array int)) "constant signal"
    [| 10; 10; 10; 10; 0; 0; 0; 0 |] out

let test_dwt53_singleton () =
  Alcotest.(check (array int)) "length 1 unchanged" [| 42 |]
    (Jpeg2000.Dwt53.forward_1d [| 42 |])

let dwt53_1d_roundtrip_qcheck =
  QCheck.Test.make ~name:"5/3 1-D forward/inverse identity" ~count:300
    QCheck.(list_of_size Gen.(1 -- 64) (int_range (-2048) 2048))
    (fun values ->
      let src = Array.of_list values in
      Jpeg2000.Dwt53.inverse_1d (Jpeg2000.Dwt53.forward_1d src) = src)

let dwt53_2d_roundtrip_qcheck =
  QCheck.Test.make ~name:"5/3 2-D multi-level identity" ~count:60
    QCheck.(triple (int_range 1 33) (int_range 1 33) (int_range 0 4))
    (fun (w, h, levels) ->
      let plane = Jpeg2000.Image.create_plane ~width:w ~height:h in
      Array.iteri
        (fun i _ -> plane.Jpeg2000.Image.data.(i) <- ((i * 97) mod 511) - 255)
        plane.Jpeg2000.Image.data;
      let orig = Array.copy plane.Jpeg2000.Image.data in
      Jpeg2000.Dwt53.forward_plane plane ~levels;
      Jpeg2000.Dwt53.inverse_plane plane ~levels;
      plane.Jpeg2000.Image.data = orig)

let test_dwt97_constant_line () =
  let out = Jpeg2000.Dwt97.forward_1d (Array.make 8 10.0) in
  (* DC gain of the scaled low-pass is 1; highs vanish. *)
  for i = 0 to 3 do
    if Float.abs (out.(i) -. 10.0) > 1e-9 then
      Alcotest.failf "low[%d] = %f" i out.(i)
  done;
  for i = 4 to 7 do
    if Float.abs out.(i) > 1e-9 then Alcotest.failf "high[%d] = %f" i out.(i)
  done

let dwt97_roundtrip_qcheck =
  QCheck.Test.make ~name:"9/7 2-D round-trip within 1e-6" ~count:60
    QCheck.(triple (int_range 1 33) (int_range 1 33) (int_range 0 4))
    (fun (w, h, levels) ->
      let m = Jpeg2000.Dwt97.matrix_create ~w ~h in
      Array.iteri
        (fun i _ ->
          m.Jpeg2000.Dwt97.values.(i) <- float_of_int (((i * 97) mod 511) - 255))
        m.Jpeg2000.Dwt97.values;
      let orig = Array.copy m.Jpeg2000.Dwt97.values in
      Jpeg2000.Dwt97.forward m ~levels;
      Jpeg2000.Dwt97.inverse m ~levels;
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) m.Jpeg2000.Dwt97.values orig)

(* -- Quantiser ------------------------------------------------------ *)

let test_quant_steps_ordered () =
  (* Deeper bands must be quantised more finely. *)
  let step level =
    Jpeg2000.Quant.step_for ~base_step:2.0 ~levels:3 ~level Jpeg2000.Subband.HL
  in
  Alcotest.(check bool) "level 3 finer than level 1" true (step 3 < step 1);
  let hh = Jpeg2000.Quant.step_for ~base_step:2.0 ~levels:3 ~level:1 Jpeg2000.Subband.HH in
  let hl = Jpeg2000.Quant.step_for ~base_step:2.0 ~levels:3 ~level:1 Jpeg2000.Subband.HL in
  Alcotest.(check bool) "HH coarser than HL" true (hh > hl)

let quant_error_bound_qcheck =
  QCheck.Test.make ~name:"quantiser error bounded by one step" ~count:300
    QCheck.(pair (float_range 0.1 8.0) (list_of_size Gen.(1 -- 50) (float_range (-1000.0) 1000.0)))
    (fun (step, values) ->
      let xs = Array.of_list values in
      let back = Jpeg2000.Quant.dequantise ~step (Jpeg2000.Quant.quantise ~step xs) in
      Array.for_all2
        (fun x r -> Float.abs (x -. r) <= Jpeg2000.Quant.max_error ~step +. 1e-9)
        xs back)

let test_quant_zero_stays_zero () =
  Alcotest.(check (array int)) "zeros" [| 0; 0 |]
    (Jpeg2000.Quant.quantise ~step:1.5 [| 0.0; 0.4 |])

(* -- MQ coder ------------------------------------------------------- *)

let test_mq_empty_flush () =
  let enc = Jpeg2000.Mq.encoder () in
  let data = Jpeg2000.Mq.flush enc in
  Alcotest.(check bool) "terminates" true (String.length data <= 3)

let test_mq_stuffing_pattern () =
  (* Long runs of LPS force renormalisation traffic; the stream must
     never contain 0xFF followed by a byte > 0x8F (marker range). *)
  let ctx = Jpeg2000.Mq.context () in
  let enc = Jpeg2000.Mq.encoder () in
  for i = 0 to 4000 do
    Jpeg2000.Mq.encode enc ctx (if i mod 5 = 0 then 1 else 0)
  done;
  let data = Jpeg2000.Mq.flush enc in
  for i = 0 to String.length data - 2 do
    if Char.code data.[i] = 0xFF && Char.code data.[i + 1] > 0x8F then
      Alcotest.failf "marker emitted at %d" i
  done

let mq_roundtrip_qcheck =
  QCheck.Test.make ~name:"MQ encode/decode identity (random contexts)"
    ~count:100
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(1 -- 2000) (pair (int_bound 5) (int_bound 1))))
    (fun (nctx, stream) ->
      let enc_ctx = Array.init nctx (fun _ -> Jpeg2000.Mq.context ()) in
      let enc = Jpeg2000.Mq.encoder () in
      List.iter
        (fun (c, bit) -> Jpeg2000.Mq.encode enc enc_ctx.(c mod nctx) bit)
        stream;
      let data = Jpeg2000.Mq.flush enc in
      let dec_ctx = Array.init nctx (fun _ -> Jpeg2000.Mq.context ()) in
      let dec = Jpeg2000.Mq.decoder data in
      List.for_all
        (fun (c, bit) -> Jpeg2000.Mq.decode dec dec_ctx.(c mod nctx) = bit)
        stream)

let mq_skewed_roundtrip_qcheck =
  QCheck.Test.make ~name:"MQ identity on heavily skewed bit streams" ~count:60
    QCheck.(list_of_size Gen.(1 -- 3000) (int_bound 99))
    (fun stream ->
      (* 1% ones: exercises the high-compression end of the table. *)
      let bits = List.map (fun v -> if v = 0 then 1 else 0) stream in
      let ctx = Jpeg2000.Mq.context () in
      let enc = Jpeg2000.Mq.encoder () in
      List.iter (Jpeg2000.Mq.encode enc ctx) bits;
      let data = Jpeg2000.Mq.flush enc in
      let ctx2 = Jpeg2000.Mq.context () in
      let dec = Jpeg2000.Mq.decoder data in
      List.for_all (fun bit -> Jpeg2000.Mq.decode dec ctx2 = bit) bits)

let test_mq_compression_on_skewed_input () =
  let ctx = Jpeg2000.Mq.context () in
  let enc = Jpeg2000.Mq.encoder () in
  let n = 8192 in
  for i = 0 to n - 1 do
    Jpeg2000.Mq.encode enc ctx (if i mod 100 = 0 then 1 else 0)
  done;
  let data = Jpeg2000.Mq.flush enc in
  (* 8192 highly skewed bits must compress far below 1024 bytes. *)
  Alcotest.(check bool) "adaptive compression works" true
    (String.length data < 200)

let test_mq_context_isolation () =
  let c0 = Jpeg2000.Mq.context () in
  let c1 = Jpeg2000.Mq.context () in
  let enc = Jpeg2000.Mq.encoder () in
  for _ = 1 to 100 do
    Jpeg2000.Mq.encode enc c0 0;
    Jpeg2000.Mq.encode enc c1 1
  done;
  Alcotest.(check bool) "contexts adapt independently" true
    (Jpeg2000.Mq.context_mps c0 = 0 && Jpeg2000.Mq.context_mps c1 = 1);
  ignore (Jpeg2000.Mq.flush enc)

(* -- T1 -------------------------------------------------------------- *)

let test_t1_num_planes () =
  Alcotest.(check int) "zero" 0 (Jpeg2000.T1.num_planes [| 0; 0 |]);
  Alcotest.(check int) "one" 1 (Jpeg2000.T1.num_planes [| 1; 0; -1 |]);
  Alcotest.(check int) "255 needs 8" 8 (Jpeg2000.T1.num_planes [| -255 |]);
  Alcotest.(check int) "256 needs 9" 9 (Jpeg2000.T1.num_planes [| 256 |])

let test_t1_zero_block () =
  let planes, data =
    Jpeg2000.T1.encode_block ~orientation:Jpeg2000.Subband.LL ~w:8 ~h:8
      (Array.make 64 0)
  in
  Alcotest.(check int) "no planes" 0 planes;
  Alcotest.(check string) "no data" "" data;
  Alcotest.(check (array int)) "decodes to zeros" (Array.make 64 0)
    (Jpeg2000.T1.decode_block ~orientation:Jpeg2000.Subband.LL ~w:8 ~h:8
       ~planes:0 "")

let test_t1_single_coefficient () =
  List.iter
    (fun (x, y, v) ->
      let w = 7 and h = 9 in
      let coeffs = Array.make (w * h) 0 in
      coeffs.((y * w) + x) <- v;
      let planes, data =
        Jpeg2000.T1.encode_block ~orientation:Jpeg2000.Subband.HH ~w ~h coeffs
      in
      let back =
        Jpeg2000.T1.decode_block ~orientation:Jpeg2000.Subband.HH ~w ~h ~planes data
      in
      Alcotest.(check (array int))
        (Printf.sprintf "impulse at %d,%d" x y)
        coeffs back)
    [ (0, 0, 5); (6, 8, -77); (3, 4, 1); (6, 0, -1); (0, 8, 1023) ]

let t1_roundtrip_all_bands_qcheck =
  QCheck.Test.make ~name:"T1 identity on random blocks, every band type"
    ~count:120
    QCheck.(
      quad (int_range 1 20) (int_range 1 20) (int_bound 3)
        (pair (int_range 0 12) small_int))
    (fun (w, h, band_code, (magnitude_bits, seed)) ->
      let orientation = Jpeg2000.Subband.orientation_of_code band_code in
      let state = ref (seed + 1) in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      let bound = (1 lsl magnitude_bits) - 1 in
      let coeffs =
        Array.init (w * h) (fun _ ->
            if bound = 0 then 0
            else
              let v = next () mod (bound + 1) in
              if next () land 1 = 0 then v else -v)
      in
      let planes, data =
        Jpeg2000.T1.encode_block ~orientation ~w ~h coeffs
      in
      Jpeg2000.T1.decode_block ~orientation ~w ~h ~planes data = coeffs)

let t1_sparse_roundtrip_qcheck =
  QCheck.Test.make ~name:"T1 identity on sparse blocks (cleanup heavy)"
    ~count:100
    QCheck.(pair (int_range 4 32) small_int)
    (fun (size, seed) ->
      let w = size and h = size in
      let state = ref (seed + 7) in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      let coeffs =
        Array.init (w * h) (fun _ ->
            if next () mod 23 = 0 then (next () mod 511) - 255 else 0)
      in
      let planes, data =
        Jpeg2000.T1.encode_block ~orientation:Jpeg2000.Subband.LH ~w ~h coeffs
      in
      Jpeg2000.T1.decode_block ~orientation:Jpeg2000.Subband.LH ~w ~h ~planes data
      = coeffs)

let t1_lut_equals_reference_qcheck =
  QCheck.Test.make
    ~name:"T1 packed-LUT path emits the reference path's exact codewords"
    ~count:100
    QCheck.(
      quad (int_range 1 20) (int_range 1 20) (int_bound 3) small_int)
    (fun (w, h, band_code, seed) ->
      let orientation = Jpeg2000.Subband.orientation_of_code band_code in
      let state = ref (seed + 3) in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      let coeffs =
        Array.init (w * h) (fun _ ->
            if next () mod 3 = 0 then (next () mod 1023) - 511 else 0)
      in
      let p_lut, d_lut =
        Jpeg2000.T1.encode_block ~lut:true ~orientation ~w ~h coeffs
      in
      let p_ref, d_ref =
        Jpeg2000.T1.encode_block ~lut:false ~orientation ~w ~h coeffs
      in
      let sp_lut, sd_lut =
        Jpeg2000.T1.encode_block_scalable ~lut:true ~orientation ~w ~h coeffs
      in
      let sp_ref, sd_ref =
        Jpeg2000.T1.encode_block_scalable ~lut:false ~orientation ~w ~h coeffs
      in
      (* Same bits out of both encoders, and each decoder inverts the
         other encoder's stream. *)
      p_lut = p_ref && d_lut = d_ref && sp_lut = sp_ref && sd_lut = sd_ref
      && Jpeg2000.T1.decode_block ~lut:false ~orientation ~w ~h ~planes:p_lut
           d_lut
         = coeffs
      && Jpeg2000.T1.decode_block ~lut:true ~orientation ~w ~h ~planes:p_ref
           d_ref
         = coeffs
      && Jpeg2000.T1.decode_block_scalable ~lut:false ~orientation ~w ~h
           ~planes:sp_lut sd_lut
         = coeffs)

let test_t1_compresses_structure () =
  (* A structured block must code smaller than raw size. *)
  let w = 32 and h = 32 in
  let coeffs =
    Array.init (w * h) (fun i -> if i mod 64 < 2 then 100 else 0)
  in
  let _, data =
    Jpeg2000.T1.encode_block ~orientation:Jpeg2000.Subband.LL ~w ~h coeffs
  in
  Alcotest.(check bool) "compressed below 1 bit/coeff" true
    (String.length data < (w * h) / 8)

let test_orientation_codes () =
  List.iter
    (fun o ->
      Alcotest.(check bool) "code round-trips" true
        (Jpeg2000.Subband.orientation_of_code (Jpeg2000.Subband.orientation_code o) = o))
    [ Jpeg2000.Subband.LL; HL; LH; HH ];
  Alcotest.(check bool) "bad code rejected" true
    (try ignore (Jpeg2000.Subband.orientation_of_code 7); false
     with Invalid_argument _ -> true)

let test_subband_gains () =
  Alcotest.(check int) "LL" 0 (Jpeg2000.Subband.gain_log2 Jpeg2000.Subband.LL);
  Alcotest.(check int) "HL" 1 (Jpeg2000.Subband.gain_log2 Jpeg2000.Subband.HL);
  Alcotest.(check int) "HH" 2 (Jpeg2000.Subband.gain_log2 Jpeg2000.Subband.HH)

let test_image_file_io () =
  let img = Jpeg2000.Image.smooth ~width:21 ~height:13 ~components:3 ~seed:77 in
  let path = Filename.temp_file "j2k_test" ".ppm" in
  Jpeg2000.Image.save_pnm img path;
  let back = Jpeg2000.Image.load_pnm path in
  Sys.remove path;
  Alcotest.(check bool) "file round-trip" true (Jpeg2000.Image.equal img back)

let test_encoder_rejects_bad_config () =
  let img = Jpeg2000.Image.gradient ~width:8 ~height:8 ~components:1 in
  let raised config =
    try ignore (Jpeg2000.Encoder.encode config img); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero tile" true
    (raised { Jpeg2000.Encoder.default_lossless with tile_w = 0 });
  Alcotest.(check bool) "negative levels" true
    (raised { Jpeg2000.Encoder.default_lossless with levels = -1 });
  Alcotest.(check bool) "zero code block" true
    (raised { Jpeg2000.Encoder.default_lossless with code_block = 0 });
  Alcotest.(check bool) "bad step" true
    (raised { Jpeg2000.Encoder.default_lossy with base_step = 0.0 })

(* -- Codestream ------------------------------------------------------ *)

let sample_stream () =
  let img = Jpeg2000.Image.smooth ~width:40 ~height:24 ~components:3 ~seed:3 in
  let config = { Jpeg2000.Encoder.default_lossless with tile_w = 16; tile_h = 16 } in
  (img, Jpeg2000.Encoder.encode config img)

let test_codestream_roundtrip () =
  let _, data = sample_stream () in
  let parsed = Jpeg2000.Codestream.parse data in
  Alcotest.(check string) "emit . parse = id" data
    (Jpeg2000.Codestream.emit parsed);
  Alcotest.(check int) "tiles" 6 (List.length parsed.Jpeg2000.Codestream.tiles)

let test_block_grid () =
  Alcotest.(check int) "exact fit" 4
    (List.length (Jpeg2000.Codestream.block_grid ~code_block:16 ~w:32 ~h:32));
  Alcotest.(check (list (pair int int))) "border block sizes"
    [ (16, 16); (4, 16); (16, 3); (4, 3) ]
    (List.map
       (fun (_, _, w, h) -> (w, h))
       (Jpeg2000.Codestream.block_grid ~code_block:16 ~w:20 ~h:19));
  Alcotest.(check int) "degenerate" 0
    (List.length (Jpeg2000.Codestream.block_grid ~code_block:16 ~w:0 ~h:8))

let test_code_block_size_invariance () =
  (* Different code-block sizes change the stream layout but the
     lossless decode must stay bit-exact. *)
  let img = Jpeg2000.Image.smooth ~width:48 ~height:40 ~components:3 ~seed:11 in
  List.iter
    (fun cb ->
      let config =
        { Jpeg2000.Encoder.default_lossless with tile_w = 48; tile_h = 40; code_block = cb }
      in
      let out = Jpeg2000.Decoder.decode (Jpeg2000.Encoder.encode config img) in
      Alcotest.(check bool)
        (Printf.sprintf "cb=%d bit exact" cb)
        true
        (Jpeg2000.Image.equal img out))
    [ 4; 8; 16; 64 ]

let test_smaller_blocks_cost_more_bytes () =
  (* Each block restarts its contexts and terminates its own MQ
     codeword, so smaller blocks compress worse. *)
  let img = Jpeg2000.Image.smooth ~width:64 ~height:64 ~components:1 ~seed:5 in
  let size cb =
    String.length
      (Jpeg2000.Encoder.encode
         { Jpeg2000.Encoder.default_lossless with tile_w = 64; tile_h = 64; code_block = cb }
         img)
  in
  Alcotest.(check bool) "4 < 64 block efficiency" true (size 4 > size 64)

let test_codestream_rejects_corruption () =
  let _, data = sample_stream () in
  let raised s = try ignore (Jpeg2000.Codestream.parse s); false with Failure _ -> true in
  Alcotest.(check bool) "bad magic" true (raised ("XXXX" ^ String.sub data 4 (String.length data - 4)));
  Alcotest.(check bool) "truncated" true (raised (String.sub data 0 (String.length data / 2)));
  Alcotest.(check bool) "trailing" true (raised (data ^ "z"))

(* -- Full codec ------------------------------------------------------ *)

let test_lossless_roundtrip_colour () =
  let img, data = sample_stream () in
  let out = Jpeg2000.Decoder.decode data in
  Alcotest.(check bool) "bit exact" true (Jpeg2000.Image.equal img out)

let test_lossless_roundtrip_grey () =
  let img = Jpeg2000.Image.checkerboard ~width:37 ~height:29 ~components:1 () in
  let config = { Jpeg2000.Encoder.default_lossless with tile_w = 20; tile_h = 20 } in
  let out = Jpeg2000.Decoder.decode (Jpeg2000.Encoder.encode config img) in
  Alcotest.(check bool) "bit exact" true (Jpeg2000.Image.equal img out)

let test_lossy_quality () =
  let img = Jpeg2000.Image.smooth ~width:64 ~height:64 ~components:3 ~seed:9 in
  let config = { Jpeg2000.Encoder.default_lossy with tile_w = 32; tile_h = 32 } in
  let data = Jpeg2000.Encoder.encode config img in
  let out = Jpeg2000.Decoder.decode data in
  let psnr = Jpeg2000.Image.psnr img out in
  Alcotest.(check bool) (Printf.sprintf "psnr %.1f > 35 dB" psnr) true (psnr > 35.0)

let test_lossy_rate_quality_tradeoff () =
  let img = Jpeg2000.Image.smooth ~width:64 ~height:64 ~components:1 ~seed:4 in
  let encode_with step =
    let config =
      { Jpeg2000.Encoder.default_lossy with tile_w = 64; tile_h = 64; base_step = step }
    in
    let data = Jpeg2000.Encoder.encode config img in
    (String.length data, Jpeg2000.Image.psnr img (Jpeg2000.Decoder.decode data))
  in
  let fine_size, fine_psnr = encode_with 1.0 in
  let coarse_size, coarse_psnr = encode_with 8.0 in
  Alcotest.(check bool) "coarser step compresses more" true (coarse_size < fine_size);
  Alcotest.(check bool) "finer step has higher quality" true (fine_psnr > coarse_psnr)

let test_lossless_compresses_smooth_content () =
  let img = Jpeg2000.Image.smooth ~width:128 ~height:128 ~components:1 ~seed:5 in
  let data = Jpeg2000.Encoder.encode Jpeg2000.Encoder.default_lossless img in
  Alcotest.(check bool) "below raw size" true (String.length data < 128 * 128)

let lossless_roundtrip_qcheck =
  QCheck.Test.make ~name:"lossless codec is identity on random images"
    ~count:20
    QCheck.(
      quad (int_range 4 48) (int_range 4 48) (int_range 1 3) (int_range 0 1000))
    (fun (w, h, comps, seed) ->
      let img =
        if seed mod 2 = 0 then Jpeg2000.Image.smooth ~width:w ~height:h ~components:comps ~seed
        else Jpeg2000.Image.noise ~width:w ~height:h ~components:comps ~seed
      in
      let config =
        { Jpeg2000.Encoder.default_lossless with tile_w = 17; tile_h = 23; levels = 2 }
      in
      let out = Jpeg2000.Decoder.decode (Jpeg2000.Encoder.encode config img) in
      Jpeg2000.Image.equal img out)

let t1_scalable_roundtrip_qcheck =
  QCheck.Test.make ~name:"scalable T1 with all passes equals plain T1" ~count:60
    QCheck.(pair (int_range 2 20) small_int)
    (fun (size, seed) ->
      let w = size and h = size in
      let state = ref (seed + 3) in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      let coeffs =
        Array.init (w * h) (fun _ ->
            if next () mod 7 = 0 then (next () mod 255) - 127 else 0)
      in
      let planes, passes =
        Jpeg2000.T1.encode_block_scalable ~orientation:Jpeg2000.Subband.HL ~w ~h
          coeffs
      in
      List.length passes = Jpeg2000.T1.total_passes ~planes
      && Jpeg2000.T1.decode_block_scalable ~orientation:Jpeg2000.Subband.HL ~w
           ~h ~planes passes
         = coeffs)

let test_t1_pass_prefix_monotone () =
  (* Decoding more passes must never lose magnitude information:
     every prefix reconstruction is the exact coefficients with the
     lower bit-planes still zero. *)
  let w = 16 and h = 16 in
  let coeffs = Array.init (w * h) (fun i -> ((i * 53) mod 255) - 127) in
  let planes, passes =
    Jpeg2000.T1.encode_block_scalable ~orientation:Jpeg2000.Subband.LL ~w ~h coeffs
  in
  let err k =
    let prefix = List.filteri (fun i _ -> i < k) passes in
    let got =
      Jpeg2000.T1.decode_block_scalable ~orientation:Jpeg2000.Subband.LL ~w ~h
        ~planes prefix
    in
    Array.fold_left ( + ) 0
      (Array.mapi (fun i v -> abs (v - coeffs.(i))) got)
  in
  let total = Jpeg2000.T1.total_passes ~planes in
  let errors = List.init (total + 1) err in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "error shrinks with passes" true (non_increasing errors);
  Alcotest.(check int) "all passes exact" 0 (List.nth errors total)

let test_progressive_decode_quality () =
  let img = Jpeg2000.Image.smooth ~width:64 ~height:64 ~components:1 ~seed:8 in
  let data =
    Jpeg2000.Encoder.encode
      { Jpeg2000.Encoder.default_lossless with tile_w = 64; tile_h = 64 }
      img
  in
  let psnr_at k =
    Jpeg2000.Image.psnr img (Jpeg2000.Decoder.decode_progressive ~max_passes:k data)
  in
  let coarse = psnr_at 4 and mid = psnr_at 10 in
  Alcotest.(check bool)
    (Printf.sprintf "quality grows with passes (%.1f < %.1f dB)" coarse mid)
    true (coarse < mid);
  Alcotest.(check bool) "all passes are lossless" true
    (psnr_at 1000 = infinity)

let test_reduced_resolution_decode () =
  let img = Jpeg2000.Image.smooth ~width:128 ~height:96 ~components:3 ~seed:21 in
  let config =
    { Jpeg2000.Encoder.default_lossless with tile_w = 64; tile_h = 32; levels = 3 }
  in
  let data = Jpeg2000.Encoder.encode config img in
  (* d = 0 must equal the full decode. *)
  Alcotest.(check bool) "d=0 is the full image" true
    (Jpeg2000.Image.equal (Jpeg2000.Decoder.decode data)
       (Jpeg2000.Decoder.decode_reduced ~discard_levels:0 data));
  (* d = 1: half dimensions, and the content must track a reference
     half-resolution image (the 5/3 low-pass of the original). *)
  let half = Jpeg2000.Decoder.decode_reduced ~discard_levels:1 data in
  Alcotest.(check int) "half width" 64 (Jpeg2000.Image.width half);
  Alcotest.(check int) "half height" 48 (Jpeg2000.Image.height half);
  let d2 = Jpeg2000.Decoder.decode_reduced ~discard_levels:2 data in
  Alcotest.(check int) "quarter width" 32 (Jpeg2000.Image.width d2);
  (* Downscaling the half image again must stay close to the quarter
     image (both are wavelet low-passes of the same content). *)
  Alcotest.(check bool) "pyramid is consistent" true
    (Jpeg2000.Image.psnr
       (Jpeg2000.Decoder.decode_reduced ~discard_levels:2 data)
       d2
    = infinity)

let test_reduced_resolution_lossy_brightness () =
  (* The K-compensation must keep the mean brightness in place. *)
  let img = Jpeg2000.Image.smooth ~width:64 ~height:64 ~components:1 ~seed:33 in
  let data =
    Jpeg2000.Encoder.encode
      { Jpeg2000.Encoder.default_lossy with tile_w = 64; tile_h = 64 }
      img
  in
  let mean image =
    let p = image.Jpeg2000.Image.planes.(0) in
    float_of_int (Array.fold_left ( + ) 0 p.Jpeg2000.Image.data)
    /. float_of_int (Array.length p.Jpeg2000.Image.data)
  in
  let full = Jpeg2000.Decoder.decode data in
  let half = Jpeg2000.Decoder.decode_reduced ~discard_levels:1 data in
  Alcotest.(check int) "half size" 32 (Jpeg2000.Image.width half);
  Alcotest.(check bool)
    (Printf.sprintf "brightness preserved (%.1f vs %.1f)" (mean half) (mean full))
    true
    (Float.abs (mean half -. mean full) < 4.0)

let test_reduced_resolution_rejects_bad_args () =
  let img = Jpeg2000.Image.smooth ~width:32 ~height:32 ~components:1 ~seed:1 in
  let data =
    Jpeg2000.Encoder.encode
      { Jpeg2000.Encoder.default_lossless with tile_w = 32; tile_h = 32; levels = 2 }
      img
  in
  let rejected d =
    try ignore (Jpeg2000.Decoder.decode_reduced ~discard_levels:d data); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "too many levels" true (rejected 3);
  Alcotest.(check bool) "negative" true (rejected (-1))

let test_decoder_survives_payload_corruption () =
  (* Corrupting an entropy payload may fail parsing or produce a
     wrong image, but must never hang or crash the decoder. *)
  let img = Jpeg2000.Image.smooth ~width:48 ~height:48 ~components:1 ~seed:3 in
  let data =
    Jpeg2000.Encoder.encode
      { Jpeg2000.Encoder.default_lossless with tile_w = 24; tile_h = 24 }
      img
  in
  let corrupt at =
    let b = Bytes.of_string data in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x5A));
    Bytes.to_string b
  in
  List.iter
    (fun at ->
      match Jpeg2000.Decoder.decode (corrupt at) with
      | _ -> ()
      | exception Failure _ -> ()
      | exception Invalid_argument _ -> ())
    [ String.length data / 2; String.length data - 5; 40 ]

let test_region_decode () =
  let img = Jpeg2000.Image.smooth ~width:96 ~height:64 ~components:3 ~seed:14 in
  let data =
    Jpeg2000.Encoder.encode
      { Jpeg2000.Encoder.default_lossless with tile_w = 32; tile_h = 32 }
      img
  in
  (* A window crossing tile boundaries must equal the crop of the
     full decode. *)
  let x = 25 and y = 10 and w = 40 and h = 30 in
  let region = Jpeg2000.Decoder.decode_region ~x ~y ~w ~h data in
  Alcotest.(check int) "region width" w (Jpeg2000.Image.width region);
  let full = Jpeg2000.Decoder.decode data in
  let matches = ref true in
  for c = 0 to 2 do
    for ry = 0 to h - 1 do
      for rx = 0 to w - 1 do
        if
          Jpeg2000.Image.plane_get region.Jpeg2000.Image.planes.(c) ~x:rx ~y:ry
          <> Jpeg2000.Image.plane_get full.Jpeg2000.Image.planes.(c) ~x:(x + rx)
               ~y:(y + ry)
        then matches := false
      done
    done
  done;
  Alcotest.(check bool) "matches the full decode's crop" true !matches;
  (* Bad windows are rejected. *)
  let rejected f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty window" true
    (rejected (fun () -> Jpeg2000.Decoder.decode_region ~x:0 ~y:0 ~w:0 ~h:5 data));
  Alcotest.(check bool) "out of bounds" true
    (rejected (fun () -> Jpeg2000.Decoder.decode_region ~x:90 ~y:0 ~w:10 ~h:5 data))

let test_rate_shaping () =
  let img = Jpeg2000.Image.smooth ~width:64 ~height:64 ~components:3 ~seed:19 in
  let data =
    Jpeg2000.Encoder.encode
      { Jpeg2000.Encoder.default_lossless with tile_w = 64; tile_h = 64 }
      img
  in
  let full = String.length data in
  (* Already-fitting budgets return the stream unchanged. *)
  Alcotest.(check string) "no-op above full size" data
    (Jpeg2000.Rate.shape ~max_bytes:(full + 100) data);
  (* Shaped streams respect the budget, decode, and degrade
     monotonically. *)
  let floor_bytes = Jpeg2000.Rate.minimum_bytes data in
  let psnr_at budget =
    let shaped = Jpeg2000.Rate.shape ~max_bytes:budget data in
    Alcotest.(check bool)
      (Printf.sprintf "within budget %d (got %d)" budget (String.length shaped))
      true
      (String.length shaped <= budget || String.length shaped = floor_bytes);
    Jpeg2000.Image.psnr img (Jpeg2000.Decoder.decode shaped)
  in
  let q1 = psnr_at (full / 8) in
  let q2 = psnr_at (full / 3) in
  let q3 = psnr_at (full * 9 / 10) in
  Alcotest.(check bool)
    (Printf.sprintf "quality grows with budget (%.1f < %.1f < %.1f)" q1 q2 q3)
    true
    (q1 < q2 && q2 <= q3);
  Alcotest.(check bool) "bad budget rejected" true
    (try ignore (Jpeg2000.Rate.shape ~max_bytes:0 data); false
     with Invalid_argument _ -> true)

let test_stagewise_equals_monolithic () =
  (* Composing the staged decoder functions by hand must equal the
     monolithic decode — the property the system models rely on. *)
  let img, data = sample_stream () in
  let stream = Jpeg2000.Decoder.parse data in
  let header = stream.Jpeg2000.Codestream.header in
  let tiles =
    List.map
      (fun tile ->
        let ed = Jpeg2000.Decoder.entropy_decode_tile header tile in
        let wd = Jpeg2000.Decoder.dequantise header ed in
        let wd = Jpeg2000.Decoder.inverse_wavelet header wd in
        Jpeg2000.Decoder.inverse_colour_and_shift header tile wd)
      stream.Jpeg2000.Codestream.tiles
  in
  let out =
    Jpeg2000.Tile.assemble ~width:40 ~height:24 ~components:3 tiles
  in
  Alcotest.(check bool) "stages compose to identity" true
    (Jpeg2000.Image.equal img out)

(* -- Stream (resumable parsing) -------------------------------------- *)

let stream_sample = lazy (snd (sample_stream ()))

(* Feed [data] split at the given (sorted, strictly interior) cut
   offsets; returns the machine. *)
let feed_partition data cuts =
  let s = Jpeg2000.Stream.create () in
  let n = String.length data in
  let rec go pos cuts =
    let next = match cuts with [] -> n | c :: _ -> c in
    ignore (Jpeg2000.Stream.feed s (String.sub data pos (next - pos)));
    match cuts with [] -> () | _ :: rest -> go next rest
  in
  go 0 cuts;
  s

(* The tentpole invariant: any partition of any byte string drives the
   machine to Codestream.parse_result of the concatenation — on clean
   streams, truncated prefixes and bit-stomped variants alike. *)
let stream_chunk_invariance_qcheck =
  QCheck.Test.make ~name:"Stream.feed is chunk-size invariant" ~count:120
    (QCheck.make
       QCheck.Gen.(
         let* variant = int_range 0 2 in
         let* a = int_range 0 99_999 in
         let* b = int_range 0 255 in
         let* cuts = list_size (int_range 0 16) (int_range 1 99_999) in
         return (variant, a, b, cuts)))
    (fun (variant, a, b, cuts) ->
      let base = Lazy.force stream_sample in
      let n = String.length base in
      let data =
        match variant with
        | 0 -> base
        | 1 -> String.sub base 0 (a mod (n + 1))
        | _ ->
          let stomped = Bytes.of_string base in
          Bytes.set stomped (a mod n) (Char.chr b);
          Bytes.to_string stomped
      in
      let m = String.length data in
      let cuts =
        List.sort_uniq Int.compare
          (List.filter_map
             (fun c ->
               let c = c mod (m + 1) in
               if c > 0 && c < m then Some c else None)
             cuts)
      in
      let s = feed_partition data cuts in
      Jpeg2000.Stream.parse_result s = Jpeg2000.Codestream.parse_result data)

let test_stream_one_byte_chunks () =
  let data = Lazy.force stream_sample in
  let s = Jpeg2000.Stream.create () in
  String.iter (fun c -> ignore (Jpeg2000.Stream.feed s (String.make 1 c))) data;
  Alcotest.(check bool) "done" true
    (Jpeg2000.Stream.status s = Jpeg2000.Stream.Done);
  Alcotest.(check string) "received" data (Jpeg2000.Stream.received s);
  Alcotest.(check int) "bytes_fed" (String.length data)
    (Jpeg2000.Stream.bytes_fed s);
  (match
     (Jpeg2000.Stream.parse_result s, Jpeg2000.Codestream.parse_result data)
   with
  | Ok a, Ok b ->
    Alcotest.(check bool) "equal parse" true (a = b);
    Alcotest.(check string) "emit round trip" data (Jpeg2000.Codestream.emit a)
  | _ -> Alcotest.fail "parse failed");
  Alcotest.(check bool) "feed after finish raises" true
    (try
       ignore (Jpeg2000.Stream.feed s "x");
       false
     with Invalid_argument _ -> true)

(* Unit boundaries of the sample stream, via the incremental readers
   themselves: end of preamble, then end of each tile segment. *)
let unit_boundaries data =
  match Jpeg2000.Codestream.read_preamble data ~pos:0 with
  | Jpeg2000.Codestream.Unit_ready ((header, ntiles), pos) ->
    let rec go acc pos n =
      if n = 0 then List.rev acc
      else
        match Jpeg2000.Codestream.read_tile ~header data ~pos with
        | Jpeg2000.Codestream.Unit_ready (_, pos') ->
          go (pos' :: acc) pos' (n - 1)
        | _ -> List.rev acc
    in
    (pos, go [] pos ntiles)
  | _ -> Alcotest.fail "sample preamble did not parse"

let test_stream_truncation_at_boundaries () =
  let data = Lazy.force stream_sample in
  let preamble_end, tile_ends = unit_boundaries data in
  Alcotest.(check int) "six tile units" 6 (List.length tile_ends);
  (* Truncating at, just before and just after every marker boundary
     must agree with the batch parser, Truncated offsets included. *)
  List.iter
    (fun b ->
      List.iter
        (fun cut ->
          if cut >= 0 && cut <= String.length data then begin
            let prefix = String.sub data 0 cut in
            let s = Jpeg2000.Stream.create () in
            ignore (Jpeg2000.Stream.feed s prefix);
            if
              Jpeg2000.Stream.parse_result s
              <> Jpeg2000.Codestream.parse_result prefix
            then Alcotest.failf "cut %d: stream disagrees with parse_result" cut
          end)
        [ b - 1; b; b + 1 ])
    (0 :: 4 :: preamble_end :: tile_ends);
  (* At an exact boundary the machine has landed exactly the units
     before the cut. *)
  let s = Jpeg2000.Stream.create () in
  ignore (Jpeg2000.Stream.feed s (String.sub data 0 preamble_end));
  Alcotest.(check bool) "header at preamble" true
    (Jpeg2000.Stream.header s <> None);
  Alcotest.(check (option int)) "tile count" (Some 6)
    (Jpeg2000.Stream.tile_count s);
  Alcotest.(check int) "no tiles yet" 0 (Jpeg2000.Stream.tiles_ready s);
  List.iteri
    (fun i e ->
      let s = Jpeg2000.Stream.create () in
      ignore (Jpeg2000.Stream.feed s (String.sub data 0 e));
      Alcotest.(check int)
        (Printf.sprintf "tiles ready at unit %d" i)
        (i + 1) (Jpeg2000.Stream.tiles_ready s))
    tile_ends

let test_parse_wrapper_routes_result () =
  (* The legacy wrapper must report exactly what parse_result says —
     one source of truth for the error taxonomy. *)
  let data = Lazy.force stream_sample in
  let expect s =
    match Jpeg2000.Codestream.parse_result s with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error e -> (
      match Jpeg2000.Codestream.parse s with
      | _ -> Alcotest.fail "parse did not raise"
      | exception Failure msg ->
        Alcotest.(check string) "wrapper message"
          ("Codestream.parse: " ^ Jpeg2000.Codestream.error_message e)
          msg)
  in
  expect "XXXXjunk";
  expect (String.sub data 0 (String.length data / 2));
  expect (data ^ "!")

(* -- flat coefficient planes ----------------------------------------

   The flat decode path (off-heap planes, scratch T1, in-place IDWT)
   is the only whole-tile pipeline since the boxed cross-check path
   retired. Golden FNV-1a-64 digests recorded while both paths still
   agreed pin its output on every entry point; set PRINT_GOLDENS=1 to
   regenerate the table after an intentional output change. *)

let test_plane_basics () =
  let p = Jpeg2000.Plane.create ~w:5 ~h:3 in
  Alcotest.(check int) "width" 5 (Jpeg2000.Plane.width p);
  Alcotest.(check int) "height" 3 (Jpeg2000.Plane.height p);
  Alcotest.(check int) "zero initialised" 0 (Jpeg2000.Plane.get p ~x:4 ~y:2);
  Jpeg2000.Plane.set p ~x:3 ~y:1 (-42);
  Alcotest.(check int) "set/get" (-42) (Jpeg2000.Plane.get p ~x:3 ~y:1);
  Jpeg2000.Plane.blit_block p ~x0:1 ~y0:1 ~w:2 ~h:2 [| 1; 2; 3; 4 |];
  Alcotest.(check int) "blit top-left" 1 (Jpeg2000.Plane.get p ~x:1 ~y:1);
  Alcotest.(check int) "blit bottom-right" 4 (Jpeg2000.Plane.get p ~x:2 ~y:2);
  Alcotest.(check (array int)) "to_array round-trips"
    (Jpeg2000.Plane.to_array p)
    Jpeg2000.Plane.(to_array (of_array ~w:5 ~h:3 (to_array p)));
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "get out of bounds" true
    (raises (fun () -> ignore (Jpeg2000.Plane.get p ~x:5 ~y:0)));
  Alcotest.(check bool) "blit out of bounds" true
    (raises (fun () ->
         Jpeg2000.Plane.blit_block p ~x0:4 ~y0:2 ~w:2 ~h:2 [| 0; 0; 0; 0 |]));
  Alcotest.(check bool) "empty plane" true
    (raises (fun () -> ignore (Jpeg2000.Plane.create ~w:0 ~h:1)))

let flat_configs =
  [
    ("lossless", { Jpeg2000.Encoder.default_lossless with tile_w = 16; tile_h = 16 });
    ("lossy", { Jpeg2000.Encoder.default_lossy with tile_w = 16; tile_h = 16 });
  ]

(* FNV-1a-64 over image geometry and samples — the same digest
   discipline the serve layer pins its reports with. *)
let fnv_prime = 0x100000001b3L
let fnv_int h v = Int64.mul (Int64.logxor h (Int64.of_int v)) fnv_prime

let image_digest h (img : Jpeg2000.Image.t) =
  let h = ref (fnv_int h (Jpeg2000.Image.width img)) in
  h := fnv_int !h (Jpeg2000.Image.height img);
  h := fnv_int !h (Array.length img.Jpeg2000.Image.planes);
  Array.iter
    (fun (p : Jpeg2000.Image.plane) ->
      Array.iter (fun v -> h := fnv_int !h v) p.Jpeg2000.Image.data)
    img.Jpeg2000.Image.planes;
  !h

(* One digest per seed covering every decode entry point (full,
   reduced, progressive, region, robust over a clean, a truncated and
   a corrupted stream) in both modes. A pure function of the seed, so
   the recorded table below is a regression oracle for the whole flat
   pipeline, concealment included. *)
let flat_golden_digest seed =
  let width = 33 + (7 * seed)
  and height = 24 + (5 * seed)
  and components = 1 + (seed mod 3) in
  let img =
    if seed mod 2 = 0 then
      Jpeg2000.Image.smooth ~width ~height ~components ~seed
    else Jpeg2000.Image.noise ~width ~height ~components ~seed
  in
  List.fold_left
    (fun h (_, config) ->
      let data = Jpeg2000.Encoder.encode config img in
      let h = image_digest h (Jpeg2000.Decoder.decode data) in
      let h =
        image_digest h (Jpeg2000.Decoder.decode_reduced ~discard_levels:1 data)
      in
      let h =
        image_digest h (Jpeg2000.Decoder.decode_progressive ~max_passes:2 data)
      in
      let h =
        image_digest h
          (Jpeg2000.Decoder.decode_region ~x:5 ~y:9 ~w:20 ~h:14 data)
      in
      let robust h data =
        match Jpeg2000.Decoder.decode_robust data with
        | Ok (image, r) ->
          let h = image_digest h image in
          let h = fnv_int h r.Jpeg2000.Decoder.concealed_blocks in
          let h = fnv_int h r.Jpeg2000.Decoder.concealed_tiles in
          fnv_int h r.Jpeg2000.Decoder.total_blocks
        | Error _ -> fnv_int h (-1)
      in
      let h = robust h data in
      let h = robust h (String.sub data 0 (String.length data * 3 / 4)) in
      let corrupt = Bytes.of_string data in
      for i = 0 to 8 do
        Bytes.set corrupt
          ((String.length data / 2) + (i * 13))
          (Char.chr ((i * 41) land 0xff))
      done;
      robust h (Bytes.to_string corrupt))
    0xcbf29ce484222325L flat_configs

(* Recorded with PRINT_GOLDENS=1 at the moment the boxed cross-check
   path retired (the two pipelines were verified bit-identical by the
   qcheck suite through the previous release). *)
let flat_golden_digests =
  [| "73ffda2f37828bda"; "e2d5818b0b350166";
     "696c4726cf0e869c"; "e249ba767dac0868" |]

let () =
  if Sys.getenv_opt "PRINT_GOLDENS" <> None then begin
    Array.iteri
      (fun seed _ ->
        Printf.printf "golden %d: %016Lx\n%!" seed (flat_golden_digest seed))
      flat_golden_digests;
    exit 0
  end

let flat_golden_qcheck =
  QCheck.Test.make ~name:"flat decode matches recorded goldens" ~count:4
    QCheck.(int_range 0 (Array.length flat_golden_digests - 1))
    (fun seed ->
      Printf.sprintf "%016Lx" (flat_golden_digest seed)
      = flat_golden_digests.(seed))

let test_flat_identity_across_pools () =
  (* The flat planes are shared mutable state across pool domains;
     disjoint-rectangle blits must keep any schedule bit-identical to
     the sequential decode. *)
  let img = Jpeg2000.Image.smooth ~width:40 ~height:24 ~components:3 ~seed:7 in
  List.iter
    (fun (name, config) ->
      let data = Jpeg2000.Encoder.encode config img in
      let reference = Jpeg2000.Decoder.decode data in
      List.iter
        (fun jobs ->
          Par.Pool.with_jobs jobs (fun pool ->
              Alcotest.(check bool)
                (Printf.sprintf "%s jobs=%d" name jobs)
                true
                (Jpeg2000.Image.equal reference
                   (Jpeg2000.Decoder.decode ~pool data))))
        [ 1; 2; 4 ])
    flat_configs

let test_staged_protocols_agree () =
  (* The in-place staged protocol (staged_run/finish_staged_ok), the
     compat protocol (staged_job/finish_staged) and the monolithic
     decode_tile must agree tile for tile. *)
  let img = Jpeg2000.Image.smooth ~width:40 ~height:24 ~components:3 ~seed:29 in
  List.iter
    (fun (name, config) ->
      let data = Jpeg2000.Encoder.encode config img in
      let stream = Jpeg2000.Codestream.parse data in
      let header = stream.Jpeg2000.Codestream.header in
      List.iter
        (fun tile ->
          let reference = Jpeg2000.Decoder.decode_tile header tile in
          let st_old = Jpeg2000.Decoder.stage_tile header tile in
          let n = Jpeg2000.Decoder.staged_jobs st_old in
          let t_old, c_old =
            Jpeg2000.Decoder.finish_staged st_old
              (Array.init n (Jpeg2000.Decoder.staged_job st_old))
          in
          let st_new = Jpeg2000.Decoder.stage_tile header tile in
          let t_new, c_new =
            Jpeg2000.Decoder.finish_staged_ok st_new
              (Array.init n (Jpeg2000.Decoder.staged_run st_new))
          in
          Alcotest.(check int) (name ^ " compat concealed") 0 c_old;
          Alcotest.(check int) (name ^ " in-place concealed") 0 c_new;
          Alcotest.(check bool) (name ^ " compat tile") true (t_old = reference);
          Alcotest.(check bool) (name ^ " in-place tile") true
            (t_new = reference))
        stream.Jpeg2000.Codestream.tiles)
    flat_configs

let () =
  Alcotest.run "jpeg2000"
    [
      ( "image",
        [
          Alcotest.test_case "basics" `Quick test_image_basics;
          Alcotest.test_case "metrics" `Quick test_image_metrics;
          Alcotest.test_case "generators in range" `Quick test_generators_in_range;
          Alcotest.test_case "generators deterministic" `Quick
            test_generators_deterministic;
          Alcotest.test_case "pnm roundtrip" `Quick test_pnm_roundtrip;
          Alcotest.test_case "pnm rejects garbage" `Quick test_pnm_rejects_garbage;
        ] );
      ( "tile",
        [
          Alcotest.test_case "split/assemble" `Quick test_tile_split_assemble;
          Alcotest.test_case "border sizes" `Quick test_tile_border_sizes;
          qc tile_roundtrip_qcheck;
        ] );
      ( "colour",
        [
          Alcotest.test_case "dc shift" `Quick test_dc_shift;
          Alcotest.test_case "dc shift clamps" `Quick test_dc_shift_clamps;
          qc rct_roundtrip_qcheck;
          qc ict_roundtrip_qcheck;
        ] );
      ( "subband",
        [
          Alcotest.test_case "decompose 32x32x2" `Quick test_subband_decompose;
          qc subband_cover_qcheck;
        ] );
      ( "dwt",
        [
          Alcotest.test_case "5/3 constant line" `Quick test_dwt53_known_line;
          Alcotest.test_case "5/3 singleton" `Quick test_dwt53_singleton;
          qc dwt53_1d_roundtrip_qcheck;
          qc dwt53_2d_roundtrip_qcheck;
          Alcotest.test_case "9/7 constant line" `Quick test_dwt97_constant_line;
          qc dwt97_roundtrip_qcheck;
        ] );
      ( "quant",
        [
          Alcotest.test_case "step ordering" `Quick test_quant_steps_ordered;
          Alcotest.test_case "zero stays zero" `Quick test_quant_zero_stays_zero;
          qc quant_error_bound_qcheck;
        ] );
      ( "mq",
        [
          Alcotest.test_case "empty flush" `Quick test_mq_empty_flush;
          Alcotest.test_case "no markers emitted" `Quick test_mq_stuffing_pattern;
          Alcotest.test_case "adaptive compression" `Quick
            test_mq_compression_on_skewed_input;
          Alcotest.test_case "context isolation" `Quick test_mq_context_isolation;
          qc mq_roundtrip_qcheck;
          qc mq_skewed_roundtrip_qcheck;
        ] );
      ( "t1",
        [
          Alcotest.test_case "num_planes" `Quick test_t1_num_planes;
          Alcotest.test_case "zero block" `Quick test_t1_zero_block;
          Alcotest.test_case "single coefficients" `Quick
            test_t1_single_coefficient;
          Alcotest.test_case "compresses structure" `Quick
            test_t1_compresses_structure;
          qc t1_roundtrip_all_bands_qcheck;
          qc t1_sparse_roundtrip_qcheck;
          qc t1_lut_equals_reference_qcheck;
        ] );
      ( "misc",
        [
          Alcotest.test_case "orientation codes" `Quick test_orientation_codes;
          Alcotest.test_case "subband gains" `Quick test_subband_gains;
          Alcotest.test_case "image file io" `Quick test_image_file_io;
          Alcotest.test_case "encoder config checks" `Quick
            test_encoder_rejects_bad_config;
        ] );
      ( "codestream",
        [
          Alcotest.test_case "roundtrip" `Quick test_codestream_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_codestream_rejects_corruption;
          Alcotest.test_case "block grid" `Quick test_block_grid;
          Alcotest.test_case "code-block size invariance" `Quick
            test_code_block_size_invariance;
          Alcotest.test_case "small blocks compress worse" `Quick
            test_smaller_blocks_cost_more_bytes;
        ] );
      ( "stream",
        [
          qc stream_chunk_invariance_qcheck;
          Alcotest.test_case "one-byte chunks" `Quick test_stream_one_byte_chunks;
          Alcotest.test_case "truncation at marker boundaries" `Quick
            test_stream_truncation_at_boundaries;
          Alcotest.test_case "parse wrapper routes parse_result" `Quick
            test_parse_wrapper_routes_result;
        ] );
      ( "codec",
        [
          Alcotest.test_case "lossless colour" `Quick test_lossless_roundtrip_colour;
          Alcotest.test_case "lossless grey" `Quick test_lossless_roundtrip_grey;
          Alcotest.test_case "lossy quality" `Quick test_lossy_quality;
          Alcotest.test_case "rate/quality tradeoff" `Quick
            test_lossy_rate_quality_tradeoff;
          Alcotest.test_case "lossless compresses" `Quick
            test_lossless_compresses_smooth_content;
          Alcotest.test_case "stages compose" `Quick test_stagewise_equals_monolithic;
          Alcotest.test_case "reduced-resolution decode" `Quick
            test_reduced_resolution_decode;
          Alcotest.test_case "reduced lossy brightness" `Quick
            test_reduced_resolution_lossy_brightness;
          Alcotest.test_case "reduced decode argument checks" `Quick
            test_reduced_resolution_rejects_bad_args;
          Alcotest.test_case "corruption does not hang" `Quick
            test_decoder_survives_payload_corruption;
          qc t1_scalable_roundtrip_qcheck;
          Alcotest.test_case "pass-prefix error monotone" `Quick
            test_t1_pass_prefix_monotone;
          Alcotest.test_case "progressive decode quality" `Quick
            test_progressive_decode_quality;
          Alcotest.test_case "region decode" `Quick test_region_decode;
          Alcotest.test_case "rate shaping" `Quick test_rate_shaping;
          qc lossless_roundtrip_qcheck;
        ] );
      ( "flat",
        [
          Alcotest.test_case "plane basics" `Quick test_plane_basics;
          qc flat_golden_qcheck;
          Alcotest.test_case "identity across pools" `Quick
            test_flat_identity_across_pools;
          Alcotest.test_case "staged protocols agree" `Quick
            test_staged_protocols_agree;
        ] );
    ]
