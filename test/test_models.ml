(* Integration tests for the nine decoder system models: functional
   correctness of every version, Table 1 orderings, Figure 1 shares,
   and the Table 2 synthesis comparison. These are the repository's
   end-to-end checks: a change that breaks a paper relation fails
   here. *)

let lossless = Jpeg2000.Codestream.Lossless
let lossy = Jpeg2000.Codestream.Lossy

(* Timing-only runs are cheap; cache them per mode. *)
let results_timing =
  let cache = Hashtbl.create 2 in
  fun mode ->
    match Hashtbl.find_opt cache mode with
    | Some r -> r
    | None ->
      let r = Models.Experiment.run_all ~payload:false mode in
      Hashtbl.add cache mode r;
      r

let get mode version =
  List.find
    (fun r ->
      String.equal r.Models.Outcome.version
        (Models.Experiment.version_name version))
    (results_timing mode)

(* -- profile -------------------------------------------------------- *)

let test_profile_shares_sum_to_100 () =
  List.iter
    (fun mode ->
      let total =
        List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Models.Profile.shares mode)
      in
      Alcotest.(check (float 0.2)) "shares sum" 100.0 total)
    [ lossless; lossy ]

let test_profile_decode_spread_balanced () =
  List.iter
    (fun mode ->
      let times =
        List.init Models.Profile.tiles (fun i ->
            Models.Profile.sw_decode_time mode ~tile:i)
      in
      let total = List.fold_left Sim.Sim_time.add Sim.Sim_time.zero times in
      let expected =
        Sim.Sim_time.mul_int (Models.Profile.sw mode).Models.Profile.t_decode
          Models.Profile.tiles
      in
      (* Mean preserved to rounding. *)
      let diff =
        abs (Sim.Sim_time.to_ps total - Sim.Sim_time.to_ps expected)
      in
      Alcotest.(check bool) "total preserved" true (diff < 1_000_000);
      (* Each aligned 4-tile stripe carries the same load. *)
      let stripe k =
        List.fold_left
          (fun acc i ->
            acc + Sim.Sim_time.to_ps (Models.Profile.sw_decode_time mode ~tile:(4 * k + i)))
          0 [ 0; 1; 2; 3 ]
      in
      let s0 = stripe 0 in
      for k = 1 to 3 do
        Alcotest.(check bool) "stripes balanced" true (abs (stripe k - s0) < 1_000_000)
      done)
    [ lossless; lossy ]

let test_profile_decode_mean_is_180ms () =
  Alcotest.(check (float 0.01)) "180 ms" 180.0
    (Sim.Sim_time.to_float_ms (Models.Profile.sw lossless).Models.Profile.t_decode)

(* -- meter ----------------------------------------------------------- *)

let test_meter_union () =
  let k = Sim.Kernel.create () in
  let m = Models.Meter.create k in
  Sim.Kernel.spawn k (fun () ->
      Models.Meter.measure m (fun () -> Sim.Kernel.wait_for (Sim.Sim_time.ms 4)));
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (Sim.Sim_time.ms 2);
      Models.Meter.measure m (fun () -> Sim.Kernel.wait_for (Sim.Sim_time.ms 4)));
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (Sim.Sim_time.ms 10);
      Models.Meter.measure m (fun () -> Sim.Kernel.wait_for (Sim.Sim_time.ms 1)));
  Sim.Kernel.run k;
  (* [0,4] U [2,6] U [10,11] = 7 ms; sum = 9 ms. *)
  Alcotest.(check (float 1e-6)) "union" 7.0 (Models.Meter.busy_ms m);
  Alcotest.(check (float 1e-6)) "sum" 9.0
    (Sim.Sim_time.to_float_ms (Models.Meter.sum m));
  Alcotest.(check int) "count" 3 (Models.Meter.count m)

let test_meter_nested_and_adjacent () =
  let k = Sim.Kernel.create () in
  let m = Models.Meter.create k in
  Sim.Kernel.spawn k (fun () ->
      (* Nested: [0,6] containing [2,3]. *)
      Models.Meter.measure m (fun () ->
          Sim.Kernel.wait_for (Sim.Sim_time.ms 2);
          Models.Meter.measure m (fun () ->
              Sim.Kernel.wait_for (Sim.Sim_time.ms 1));
          Sim.Kernel.wait_for (Sim.Sim_time.ms 3)));
  Sim.Kernel.spawn k (fun () ->
      (* Adjacent: [6,8] then [8,9] — touching intervals merge. *)
      Sim.Kernel.wait_for (Sim.Sim_time.ms 6);
      Models.Meter.measure m (fun () -> Sim.Kernel.wait_for (Sim.Sim_time.ms 2));
      Models.Meter.measure m (fun () -> Sim.Kernel.wait_for (Sim.Sim_time.ms 1)));
  Sim.Kernel.run k;
  (* [0,6] U [2,3] U [6,8] U [8,9] = [0,9]: nesting adds nothing,
     adjacency leaves no gap. *)
  Alcotest.(check (float 1e-6)) "union" 9.0 (Models.Meter.busy_ms m);
  Alcotest.(check (float 1e-6)) "sum counts nesting twice" 10.0
    (Sim.Sim_time.to_float_ms (Models.Meter.sum m));
  Alcotest.(check int) "count" 4 (Models.Meter.count m)

let test_meter_zero_width () =
  let k = Sim.Kernel.create () in
  let m = Models.Meter.create k in
  Sim.Kernel.spawn k (fun () ->
      (* An interval of zero simulated width contributes count but no
         busy time. *)
      Models.Meter.measure m (fun () -> ());
      Sim.Kernel.wait_for (Sim.Sim_time.ms 1);
      Models.Meter.measure m (fun () -> Sim.Kernel.wait_for (Sim.Sim_time.ms 2)));
  Sim.Kernel.run k;
  Alcotest.(check (float 1e-6)) "union ignores empty interval" 2.0
    (Models.Meter.busy_ms m);
  Alcotest.(check int) "count includes empty interval" 2
    (Models.Meter.count m)

(* -- functional correctness of every version ------------------------- *)

let test_all_versions_decode_correctly () =
  List.iter
    (fun mode ->
      List.iter
        (fun version ->
          let r = Models.Experiment.run ~payload:true version mode in
          match r.Models.Outcome.functional_ok with
          | Some true -> ()
          | Some false ->
            Alcotest.failf "version %s (%s): wrong image"
              r.Models.Outcome.version
              (Format.asprintf "%a" Jpeg2000.Codestream.pp_mode mode)
          | None -> Alcotest.failf "version %s: payload missing" r.Models.Outcome.version)
        Models.Experiment.all_versions)
    [ lossless; lossy ]

let test_workload_rejects_out_of_order_stages () =
  let w = Models.Workload.make ~payload:true lossless in
  Alcotest.(check bool) "IQ before decode rejected" true
    (try
       Models.Workload.stage_iq w 0;
       false
     with Failure _ -> true)

let test_payload_does_not_change_timing () =
  let with_payload = Models.Experiment.run ~payload:true Models.Experiment.V3 lossless in
  let without = Models.Experiment.run ~payload:false Models.Experiment.V3 lossless in
  Alcotest.(check (float 1e-9)) "same simulated decode time"
    without.Models.Outcome.decode_ms with_payload.Models.Outcome.decode_ms;
  Alcotest.(check (float 1e-9)) "same simulated IDWT time"
    without.Models.Outcome.idwt_ms with_payload.Models.Outcome.idwt_ms

(* -- Table 1 orderings (the paper's quantitative story) -------------- *)

let test_paper_relations_hold () =
  let checks =
    Models.Experiment.paper_relations (results_timing lossless) (results_timing lossy)
  in
  List.iter
    (fun c ->
      if not c.Models.Experiment.holds then
        Alcotest.failf "relation failed: %s (%s)" c.Models.Experiment.relation
          c.Models.Experiment.detail)
    checks;
  Alcotest.(check int) "all ten relations evaluated" 10 (List.length checks)

let test_v1_absolute_times () =
  (* 16 tiles x 202.7 ms (lossless) and 229.0 ms (lossy). *)
  let r_ll = get lossless Models.Experiment.V1 in
  let r_ly = get lossy Models.Experiment.V1 in
  Alcotest.(check (float 1.0)) "lossless total" 3243.2 r_ll.Models.Outcome.decode_ms;
  Alcotest.(check (float 1.0)) "lossy total" 3664.1 r_ly.Models.Outcome.decode_ms;
  Alcotest.(check (float 0.5)) "lossless IDWT" 178.4 r_ll.Models.Outcome.idwt_ms;
  Alcotest.(check (float 0.5)) "lossy IDWT" 454.4 r_ly.Models.Outcome.idwt_ms

let test_idwt_call_counts () =
  (* One metered IDWT interval per tile in every model. *)
  List.iter
    (fun version ->
      let r = get lossless version in
      Alcotest.(check int)
        (Printf.sprintf "v%s intervals" r.Models.Outcome.version)
        Models.Profile.tiles r.Models.Outcome.idwt_calls)
    Models.Experiment.all_versions

let test_vta_decode_slower_than_app () =
  List.iter
    (fun mode ->
      let v3 = get mode Models.Experiment.V3 in
      let v6a = get mode Models.Experiment.V6a in
      let v6b = get mode Models.Experiment.V6b in
      Alcotest.(check bool) "6a above 3" true
        (v6a.Models.Outcome.decode_ms > v3.Models.Outcome.decode_ms);
      Alcotest.(check bool) "6b between" true
        (v6b.Models.Outcome.decode_ms > v3.Models.Outcome.decode_ms
        && v6b.Models.Outcome.decode_ms <= v6a.Models.Outcome.decode_ms))
    [ lossless; lossy ]

let test_determinism () =
  let a = Models.Experiment.run ~payload:false Models.Experiment.V7a lossy in
  let b = Models.Experiment.run ~payload:false Models.Experiment.V7a lossy in
  Alcotest.(check (float 0.0)) "identical decode time"
    a.Models.Outcome.decode_ms b.Models.Outcome.decode_ms;
  Alcotest.(check (float 0.0)) "identical IDWT time" a.Models.Outcome.idwt_ms
    b.Models.Outcome.idwt_ms

(* -- Figure 1 --------------------------------------------------------- *)

let test_figure1_shares_match () =
  let text = Models.Tables.figure1 ~payload:false () in
  (* The measured column must reproduce the paper column for the
     dominant stage in both modes. *)
  Alcotest.(check bool) "88.8% present" true (Str_util.contains text "88.8%");
  Alcotest.(check bool) "78.6% present" true (Str_util.contains text "78.6%");
  Alcotest.(check bool) "12.4% present" true (Str_util.contains text "12.4%")

(* -- Table 2 ----------------------------------------------------------- *)

let table2 = lazy (Models.Tables.table2_rows ())

let find_core name =
  List.find (fun r -> Str_util.contains r.Models.Tables.core name) (Lazy.force table2)

let test_table2_idwt53_shape () =
  let r = find_core "IDWT53" in
  let ratio =
    float_of_int r.Models.Tables.fossy_area.Rtl.Area.slices
    /. float_of_int r.Models.Tables.ref_area.Rtl.Area.slices
  in
  Alcotest.(check bool)
    (Printf.sprintf "FOSSY ~10%% bigger (got %+.1f%%)" ((ratio -. 1.) *. 100.))
    true
    (ratio > 1.0 && ratio < 1.2);
  let freq_ratio = r.Models.Tables.fossy_mhz /. r.Models.Tables.ref_mhz in
  Alcotest.(check bool) "frequencies similar" true
    (freq_ratio > 0.85 && freq_ratio < 1.15);
  Alcotest.(check bool) "both meet 100 MHz" true
    (r.Models.Tables.fossy_mhz >= 100.0 && r.Models.Tables.ref_mhz >= 100.0)

let test_table2_idwt97_shape () =
  let r = find_core "IDWT97" in
  let ratio =
    float_of_int r.Models.Tables.fossy_area.Rtl.Area.slices
    /. float_of_int r.Models.Tables.ref_area.Rtl.Area.slices
  in
  Alcotest.(check bool)
    (Printf.sprintf "FOSSY ~15%% smaller (got %+.1f%%)" ((ratio -. 1.) *. 100.))
    true
    (ratio > 0.78 && ratio < 0.92);
  let freq_ratio = r.Models.Tables.fossy_mhz /. r.Models.Tables.ref_mhz in
  Alcotest.(check bool)
    (Printf.sprintf "FOSSY ~28%% slower (got %+.1f%%)" ((freq_ratio -. 1.) *. 100.))
    true
    (freq_ratio > 0.65 && freq_ratio < 0.8);
  Alcotest.(check bool) "both meet 100 MHz" true
    (r.Models.Tables.fossy_mhz >= 100.0 && r.Models.Tables.ref_mhz >= 100.0)

let test_table2_loc_relations () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "generated VHDL several times the SystemC" true
        (r.Models.Tables.fossy_vhdl_loc > 3 * r.Models.Tables.systemc_loc);
      Alcotest.(check bool) "reference VHDL close to SystemC size" true
        (r.Models.Tables.ref_vhdl_loc < 2 * r.Models.Tables.systemc_loc);
      Alcotest.(check bool) "97 core bigger than 53 core" true
        ((find_core "IDWT97").Models.Tables.systemc_loc
        > (find_core "IDWT53").Models.Tables.systemc_loc))
    (Lazy.force table2)

let test_idwt_cores_validate () =
  List.iter
    (fun m ->
      match Fossy.Hir.validate m with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s: %s" m.Fossy.Hir.m_name (String.concat "; " es))
    [ Models.Idwt_cores.idwt53_systemc; Models.Idwt_cores.idwt97_systemc ]

(* -- VTA mapping ------------------------------------------------------- *)

let test_vta_mapping_valid () =
  List.iter
    (fun (sw_tasks, idwt_p2p) ->
      let vta = Models.Vta_models.mapping ~sw_tasks ~idwt_p2p in
      match Osss.Vta.validate vta with
      | Ok () -> ()
      | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))
    [ (1, false); (1, true); (4, false); (4, true) ]

let test_vta_mapping_processors () =
  let vta = Models.Vta_models.mapping ~sw_tasks:4 ~idwt_p2p:false in
  Alcotest.(check int) "four processors" 4 (List.length (Osss.Vta.processors vta))

let test_version_names () =
  List.iter
    (fun v ->
      Alcotest.(check bool) "name round-trips" true
        (Models.Experiment.version_of_name (Models.Experiment.version_name v)
        = Some v))
    Models.Experiment.all_versions;
  Alcotest.(check bool) "unknown rejected" true
    (Models.Experiment.version_of_name "9z" = None)

let test_outcome_helpers () =
  let base =
    { Models.Outcome.version = "1"; mode = lossless; decode_ms = 100.0;
      idwt_ms = 20.0; idwt_calls = 16; functional_ok = None;
      resilience = Models.Outcome.clean;
      telemetry = Telemetry.Report.empty }
  in
  let faster = { base with Models.Outcome.version = "2"; decode_ms = 50.0; idwt_ms = 5.0 } in
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Models.Outcome.speedup_vs base faster);
  Alcotest.(check (float 1e-9)) "idwt speedup" 4.0
    (Models.Outcome.idwt_speedup_vs base faster)

let test_resilience_clean_and_misses () =
  let run ?idwt_deadline () =
    Models.Experiment.run_workload ?idwt_deadline Models.Experiment.V1
      (Models.Workload.make ~payload:false lossless)
  in
  let o = run () in
  Alcotest.(check bool) "clean run has clean resilience" true
    (Models.Outcome.is_clean o.Models.Outcome.resilience);
  let strict = run ~idwt_deadline:(Sim.Sim_time.us 1) () in
  Alcotest.(check bool) "impossible IDWT deadline counted" true
    (strict.Models.Outcome.resilience.Models.Outcome.deadline_misses > 0);
  (* ret_check observes; it must not perturb the timed behaviour. *)
  Alcotest.(check (float 1e-9)) "deadline monitoring is timing-neutral"
    o.Models.Outcome.decode_ms strict.Models.Outcome.decode_ms

let test_table_text_contains_rows () =
  let t1 = Models.Tables.table1 ~payload:false () in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_util.contains t1 fragment))
    [ "SW only"; "6b HW/SW SO on bus & P2P"; "Derived factors" ];
  let t2 = Models.Tables.table2 () in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_util.contains t2 fragment))
    [ "IDWT53"; "IDWT97"; "occupied slices"; "FOSSY/reference" ]

let test_report_formatting () =
  Alcotest.(check string) "ms" "12.3" (Osss.Report.fmt_ms 12.34);
  Alcotest.(check string) "factor" "4.35x" (Osss.Report.fmt_factor 4.352);
  Alcotest.(check string) "pct" "88.8%" (Osss.Report.fmt_pct 88.8)

let () =
  Alcotest.run "models"
    [
      ( "profile",
        [
          Alcotest.test_case "shares sum to 100%" `Quick
            test_profile_shares_sum_to_100;
          Alcotest.test_case "decode spread balanced" `Quick
            test_profile_decode_spread_balanced;
          Alcotest.test_case "decode mean 180 ms" `Quick
            test_profile_decode_mean_is_180ms;
        ] );
      ( "meter",
        [
          Alcotest.test_case "interval union" `Quick test_meter_union;
          Alcotest.test_case "nested and adjacent intervals" `Quick
            test_meter_nested_and_adjacent;
          Alcotest.test_case "zero-width intervals" `Quick
            test_meter_zero_width;
        ] );
      ( "functional",
        [
          Alcotest.test_case "all versions decode correctly" `Slow
            test_all_versions_decode_correctly;
          Alcotest.test_case "stage order enforced" `Quick
            test_workload_rejects_out_of_order_stages;
          Alcotest.test_case "payload does not change timing" `Quick
            test_payload_does_not_change_timing;
        ] );
      ( "table1",
        [
          Alcotest.test_case "paper relations hold" `Quick
            test_paper_relations_hold;
          Alcotest.test_case "v1 absolute times" `Quick test_v1_absolute_times;
          Alcotest.test_case "one IDWT interval per tile" `Quick
            test_idwt_call_counts;
          Alcotest.test_case "VTA decode above app layer" `Quick
            test_vta_decode_slower_than_app;
          Alcotest.test_case "simulation deterministic" `Quick test_determinism;
        ] );
      ( "figure1",
        [ Alcotest.test_case "stage shares match" `Quick test_figure1_shares_match ]
      );
      ( "table2",
        [
          Alcotest.test_case "IDWT53 shape" `Quick test_table2_idwt53_shape;
          Alcotest.test_case "IDWT97 shape" `Quick test_table2_idwt97_shape;
          Alcotest.test_case "LoC relations" `Quick test_table2_loc_relations;
          Alcotest.test_case "cores validate" `Quick test_idwt_cores_validate;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "version names" `Quick test_version_names;
          Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
          Alcotest.test_case "resilience clean + deadline misses" `Quick
            test_resilience_clean_and_misses;
          Alcotest.test_case "table text rows" `Quick test_table_text_contains_rows;
          Alcotest.test_case "report formatting" `Quick test_report_formatting;
        ] );
      ( "vta_mapping",
        [
          Alcotest.test_case "mappings valid" `Quick test_vta_mapping_valid;
          Alcotest.test_case "processor count" `Quick test_vta_mapping_processors;
        ] );
    ]
