(* Tests for the discrete-event simulation kernel. *)

let time = Alcotest.testable Sim.Sim_time.pp Sim.Sim_time.equal

let ms = Sim.Sim_time.ms
let us = Sim.Sim_time.us
let ns = Sim.Sim_time.ns

(* -- Sim_time ----------------------------------------------------- *)

let test_time_units () =
  Alcotest.(check int) "1 ms in ps" 1_000_000_000 Sim.Sim_time.(to_ps (ms 1));
  Alcotest.(check int) "1 us in ps" 1_000_000 Sim.Sim_time.(to_ps (us 1));
  Alcotest.(check int) "1 ns in ps" 1_000 Sim.Sim_time.(to_ps (ns 1));
  Alcotest.check time "add" (ms 3) Sim.Sim_time.(add (ms 1) (ms 2));
  Alcotest.check time "sub" (ms 1) Sim.Sim_time.(sub (ms 3) (ms 2));
  Alcotest.check time "cycles at 100 MHz" (ns 10)
    (Sim.Sim_time.cycles ~hz:100_000_000 1);
  Alcotest.check time "of_ms_float" (us 1500) (Sim.Sim_time.of_ms_float 1.5)

let test_time_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Sim_time.of_ps: negative")
    (fun () -> ignore (Sim.Sim_time.of_ps (-1)));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Sim_time.sub: negative result") (fun () ->
      ignore Sim.Sim_time.(sub (ms 1) (ms 2)))

let test_time_pp () =
  Alcotest.(check string) "ms" "2.5 ms" Sim.Sim_time.(to_string (us 2500));
  Alcotest.(check string) "ns" "10 ns" Sim.Sim_time.(to_string (ns 10));
  Alcotest.(check string) "zero" "0 s" Sim.Sim_time.(to_string zero)

(* -- Pqueue ------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Sim.Pqueue.create () in
  List.iter (fun (k, v) -> Sim.Pqueue.push q ~key:k v)
    [ (5, "e"); (1, "a"); (3, "c"); (1, "b"); (3, "d") ];
  let order = ref [] in
  let rec drain () =
    match Sim.Pqueue.pop q with
    | None -> ()
    | Some (_, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "stable order" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !order)

let test_pqueue_fifo_qcheck =
  QCheck.Test.make ~name:"pqueue pops sorted and FIFO-stable" ~count:200
    QCheck.(list (int_bound 50))
    (fun keys ->
      let q = Sim.Pqueue.create () in
      List.iteri (fun i k -> Sim.Pqueue.push q ~key:k (k, i)) keys;
      let rec drain acc =
        match Sim.Pqueue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      let sorted =
        List.stable_sort
          (fun (k1, _) (k2, _) -> Int.compare k1 k2)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      popped = sorted)

(* Kept out of line so no stack slot of the test body itself pins the
   pushed values. *)
let[@inline never] pqueue_fill q weak =
  let a = ref 1 and b = ref 2 in
  Weak.set weak 0 (Some a);
  Weak.set weak 1 (Some b);
  Sim.Pqueue.push q ~key:1 a;
  Sim.Pqueue.push q ~key:2 b

let test_pqueue_pop_clears_slot () =
  (* Regression: [pop] used to leave the moved last entry in the
     vacated slot [heap.(size)], keeping the popped value (and any
     closure it captures) live until a later push overwrote it. *)
  let q = Sim.Pqueue.create () in
  let weak = Weak.create 2 in
  pqueue_fill q weak;
  ignore (Sim.Pqueue.pop q);
  ignore (Sim.Pqueue.pop q);
  Gc.full_major ();
  Alcotest.(check bool) "first popped value collected" false
    (Weak.check weak 0);
  Alcotest.(check bool) "second popped value collected" false
    (Weak.check weak 1)

let test_pqueue_pop_le () =
  let q = Sim.Pqueue.create () in
  List.iter (fun k -> Sim.Pqueue.push q ~key:k k) [ 5; 2; 9 ];
  Alcotest.(check (option int)) "below threshold" (Some 2)
    (Sim.Pqueue.pop_le q ~key:3);
  Alcotest.(check (option int)) "next exceeds" None (Sim.Pqueue.pop_le q ~key:3);
  Alcotest.(check (option int)) "raised threshold" (Some 5)
    (Sim.Pqueue.pop_le q ~key:5);
  Alcotest.(check int) "one left" 1 (Sim.Pqueue.length q)

(* -- Kernel ------------------------------------------------------- *)

let test_wait_for_advances_time () =
  let k = Sim.Kernel.create () in
  let seen = ref [] in
  Sim.Kernel.spawn k (fun () ->
      seen := Sim.Kernel.now k :: !seen;
      Sim.Kernel.wait_for (ms 5);
      seen := Sim.Kernel.now k :: !seen;
      Sim.Kernel.wait_for (ms 7);
      seen := Sim.Kernel.now k :: !seen);
  Sim.Kernel.run k;
  Alcotest.(check (list time)) "times"
    [ Sim.Sim_time.zero; ms 5; ms 12 ]
    (List.rev !seen);
  Alcotest.check time "final time" (ms 12) (Sim.Kernel.now k)

let test_two_processes_interleave () =
  let k = Sim.Kernel.create () in
  let log = ref [] in
  let say s = log := s :: !log in
  Sim.Kernel.spawn k (fun () ->
      say "a0";
      Sim.Kernel.wait_for (ms 2);
      say "a2");
  Sim.Kernel.spawn k (fun () ->
      say "b0";
      Sim.Kernel.wait_for (ms 1);
      say "b1";
      Sim.Kernel.wait_for (ms 2);
      say "b3");
  Sim.Kernel.run k;
  Alcotest.(check (list string)) "interleaving"
    [ "a0"; "b0"; "b1"; "a2"; "b3" ]
    (List.rev !log)

let test_run_until () =
  let k = Sim.Kernel.create () in
  let count = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      let rec loop () =
        Sim.Kernel.wait_for (ms 1);
        incr count;
        loop ()
      in
      loop ());
  Sim.Kernel.run ~until:(us 3500) k;
  Alcotest.(check int) "ticks before horizon" 3 !count;
  Alcotest.check time "clamped to horizon" (us 3500) (Sim.Kernel.now k);
  (* Resuming continues from where we stopped. *)
  Sim.Kernel.run ~until:(ms 10) k;
  Alcotest.(check int) "ticks after resume" 10 !count

let test_stop () =
  let k = Sim.Kernel.create () in
  let count = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      let rec loop () =
        Sim.Kernel.wait_for (ms 1);
        incr count;
        if !count = 4 then Sim.Kernel.stop k;
        loop ()
      in
      loop ());
  Sim.Kernel.run k;
  Alcotest.(check int) "stopped after 4" 4 !count

let test_spawn_during_run () =
  let k = Sim.Kernel.create () in
  let log = ref [] in
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 1);
      Sim.Kernel.spawn k (fun () ->
          log := Sim.Kernel.now k :: !log;
          Sim.Kernel.wait_for (ms 1);
          log := Sim.Kernel.now k :: !log));
  Sim.Kernel.run k;
  Alcotest.(check (list time)) "child times" [ ms 1; ms 2 ] (List.rev !log)

let test_exception_propagates () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 1);
      failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () ->
      Sim.Kernel.run k)

let test_live_process_names () =
  let k = Sim.Kernel.create () in
  let e = Sim.Event.create k () in
  Sim.Kernel.spawn k ~name:"finishes" (fun () -> Sim.Kernel.wait_for (ms 1));
  Sim.Kernel.spawn k ~name:"blocked-forever" (fun () -> Sim.Event.wait e);
  Sim.Kernel.run k;
  Alcotest.(check (list string)) "blocked process identified"
    [ "blocked-forever" ]
    (Sim.Kernel.live_process_names k)

let test_live_processes () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.spawn k (fun () -> Sim.Kernel.wait_for (ms 1));
  Sim.Kernel.spawn k (fun () -> Sim.Kernel.wait_for (ms 2));
  Alcotest.(check int) "before run" 2 (Sim.Kernel.live_processes k);
  Sim.Kernel.run k;
  Alcotest.(check int) "after run" 0 (Sim.Kernel.live_processes k)

(* -- Event -------------------------------------------------------- *)

let test_delta_count_advances () =
  let k = Sim.Kernel.create () in
  let e = Sim.Event.create k () in
  Sim.Kernel.spawn k (fun () ->
      Sim.Event.notify e;
      Sim.Event.wait e);
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.yield ();
      Sim.Event.notify e);
  Sim.Kernel.run k;
  Alcotest.(check bool) "several delta cycles ran" true
    (Sim.Kernel.delta_count k >= 2)

let test_event_immediate_notify () =
  let k = Sim.Kernel.create () in
  let e = Sim.Event.create k () in
  let woke_in_delta = ref (-1) in
  Sim.Kernel.spawn k (fun () ->
      Sim.Event.wait e;
      woke_in_delta := Sim.Kernel.delta_count k);
  Sim.Kernel.spawn k (fun () -> Sim.Event.notify_immediate e);
  Sim.Kernel.run k;
  (* Immediate notification delivers within the first delta cycle. *)
  Alcotest.(check int) "same evaluation phase" 0 !woke_in_delta

let test_event_wakes_waiters () =
  let k = Sim.Kernel.create () in
  let e = Sim.Event.create k ~name:"go" () in
  let woken = ref [] in
  let waiter name =
    Sim.Kernel.spawn k (fun () ->
        Sim.Event.wait e;
        woken := (name, Sim.Kernel.now k) :: !woken)
  in
  waiter "w1";
  waiter "w2";
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 3);
      Sim.Event.notify e);
  Sim.Kernel.run k;
  Alcotest.(check (list (pair string time)))
    "both woken at notify time"
    [ ("w1", ms 3); ("w2", ms 3) ]
    (List.rev !woken)

let test_event_late_waiter_not_woken () =
  let k = Sim.Kernel.create () in
  let e = Sim.Event.create k () in
  let woken = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      (* Notify, then wait: the notification must not wake us. *)
      Sim.Event.notify e;
      Sim.Event.wait e;
      incr woken);
  Sim.Kernel.run k;
  Alcotest.(check int) "not woken by own earlier notify" 0 !woken

let test_event_timed_notify () =
  let k = Sim.Kernel.create () in
  let e = Sim.Event.create k () in
  let at = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      Sim.Event.wait e;
      at := Sim.Kernel.now k);
  Sim.Kernel.spawn k (fun () -> Sim.Event.notify_after e (ms 4));
  Sim.Kernel.run k;
  Alcotest.check time "woken at 4 ms" (ms 4) !at

let test_wait_any () =
  let k = Sim.Kernel.create () in
  let e1 = Sim.Event.create k () and e2 = Sim.Event.create k () in
  let at = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      Sim.Event.wait_any [ e1; e2 ];
      at := Sim.Kernel.now k);
  Sim.Kernel.spawn k (fun () -> Sim.Event.notify_after e2 (ms 2));
  Sim.Kernel.spawn k (fun () -> Sim.Event.notify_after e1 (ms 9));
  Sim.Kernel.run k;
  Alcotest.check time "earliest wins" (ms 2) !at

(* -- Signal ------------------------------------------------------- *)

let test_signal_update_semantics () =
  let k = Sim.Kernel.create () in
  let s = Sim.Signal.create k 0 in
  let observed_same_phase = ref (-1) in
  let observed_after = ref (-1) in
  Sim.Kernel.spawn k (fun () ->
      Sim.Signal.write s 42;
      observed_same_phase := Sim.Signal.value s;
      Sim.Kernel.yield ();
      observed_after := Sim.Signal.value s);
  Sim.Kernel.run k;
  Alcotest.(check int) "write invisible in same phase" 0 !observed_same_phase;
  Alcotest.(check int) "visible one delta later" 42 !observed_after

let test_signal_last_write_wins () =
  let k = Sim.Kernel.create () in
  let s = Sim.Signal.create k 0 in
  Sim.Kernel.spawn k (fun () ->
      Sim.Signal.write s 1;
      Sim.Signal.write s 2;
      Sim.Kernel.yield ();
      Alcotest.(check int) "last write" 2 (Sim.Signal.value s));
  Sim.Kernel.run k

let test_signal_change_event () =
  let k = Sim.Kernel.create () in
  let s = Sim.Signal.create k 0 in
  let changes = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      let rec loop () =
        Sim.Signal.wait_change s;
        incr changes;
        loop ()
      in
      loop ());
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 1);
      Sim.Signal.write s 5;
      Sim.Kernel.wait_for (ms 1);
      (* Writing an equal value is not a change. *)
      Sim.Signal.write s 5;
      Sim.Kernel.wait_for (ms 1);
      Sim.Signal.write s 6);
  Sim.Kernel.run k;
  Alcotest.(check int) "two real changes" 2 !changes

let test_signal_wait_value () =
  let k = Sim.Kernel.create () in
  let s = Sim.Signal.create k 0 in
  let at = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      Sim.Signal.wait_value s (fun v -> v >= 3);
      at := Sim.Kernel.now k);
  Sim.Kernel.spawn k (fun () ->
      for v = 1 to 5 do
        Sim.Kernel.wait_for (ms 1);
        Sim.Signal.write s v
      done);
  Sim.Kernel.run k;
  Alcotest.check time "threshold reached at 3 ms" (ms 3) !at

(* -- Mailbox ------------------------------------------------------ *)

let test_mailbox_fifo () =
  let k = Sim.Kernel.create () in
  let mb = Sim.Mailbox.create k () in
  let received = ref [] in
  Sim.Kernel.spawn k (fun () ->
      for i = 1 to 5 do
        Sim.Mailbox.put mb i;
        Sim.Kernel.wait_for (ms 1)
      done);
  Sim.Kernel.spawn k (fun () ->
      for _ = 1 to 5 do
        received := Sim.Mailbox.get mb :: !received
      done);
  Sim.Kernel.run k;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5 ]
    (List.rev !received)

let test_mailbox_blocks_when_full () =
  let k = Sim.Kernel.create () in
  let mb = Sim.Mailbox.create k ~capacity:2 () in
  let producer_done = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      for i = 1 to 3 do
        Sim.Mailbox.put mb i
      done;
      producer_done := Sim.Kernel.now k);
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 5);
      ignore (Sim.Mailbox.get mb));
  Sim.Kernel.run k;
  Alcotest.check time "third put blocked until get" (ms 5) !producer_done

(* -- Trace -------------------------------------------------------- *)

let test_trace () =
  let k = Sim.Kernel.create () in
  let tr = Sim.Trace.create k () in
  Sim.Kernel.spawn k (fun () ->
      Sim.Trace.record tr "start";
      Sim.Kernel.wait_for (ms 2);
      Sim.Trace.recordf tr "tick %d" 1);
  Sim.Kernel.run k;
  Alcotest.(check (option time)) "start at 0" (Some Sim.Sim_time.zero)
    (Sim.Trace.find tr "start");
  Alcotest.(check (option time)) "tick at 2ms" (Some (ms 2))
    (Sim.Trace.find tr "tick 1");
  Alcotest.(check int) "two records" 2 (List.length (Sim.Trace.records tr))

let test_trace_capacity () =
  let k = Sim.Kernel.create () in
  let tr = Sim.Trace.create k ~capacity:2 () in
  Sim.Kernel.spawn k (fun () ->
      Sim.Trace.record tr "a";
      Sim.Kernel.wait_for (ms 1);
      Sim.Trace.record tr "b";
      Sim.Kernel.wait_for (ms 1);
      Sim.Trace.record tr "c");
  Sim.Kernel.run k;
  Alcotest.(check (list string))
    "ring keeps the newest records, oldest first" [ "b"; "c" ]
    (List.map snd (Sim.Trace.records tr));
  Alcotest.(check int) "one eviction counted" 1 (Sim.Trace.dropped tr);
  Alcotest.(check (option time)) "evicted record unfindable" None
    (Sim.Trace.find tr "a");
  Alcotest.(check (option time)) "retained record findable" (Some (ms 2))
    (Sim.Trace.find tr "c");
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Sim.Trace.create k ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* -- Clock ---------------------------------------------------------- *)

let test_clock_edges () =
  let k = Sim.Kernel.create () in
  let clk = Sim.Clock.create k ~period:(ns 10) ~until:(ns 95) () in
  Sim.Kernel.run k;
  (* Rising edges at 0, 10, ..., 90. *)
  Alcotest.(check int) "ten rising edges" 10 (Sim.Clock.edges clk)

let test_clock_wait_cycles () =
  let k = Sim.Kernel.create () in
  let clk = Sim.Clock.create k ~period:(ns 10) ~until:(ns 200) () in
  let at = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      Sim.Clock.wait_cycles clk 5;
      at := Sim.Kernel.now k);
  Sim.Kernel.run k;
  (* Process registers at t=0 after the first edge fired; it sees the
     edges at 10,20,30,40,50. *)
  Alcotest.check time "five edges later" (ns 50) !at

let test_clock_signal_follows () =
  let k = Sim.Kernel.create () in
  let clk = Sim.Clock.create k ~period:(ns 10) ~duty:0.3 ~until:(ns 9) () in
  let high_at = ref Sim.Sim_time.zero and low_at = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      Sim.Signal.wait_value (Sim.Clock.signal clk) (fun v -> v);
      high_at := Sim.Kernel.now k;
      Sim.Signal.wait_value (Sim.Clock.signal clk) not;
      low_at := Sim.Kernel.now k);
  Sim.Kernel.run k;
  Alcotest.check time "high from t=0" Sim.Sim_time.zero !high_at;
  Alcotest.check time "low after 30% duty" (ns 3) !low_at

let test_clock_invalid () =
  let k = Sim.Kernel.create () in
  Alcotest.(check bool) "zero period rejected" true
    (try ignore (Sim.Clock.create k ~period:Sim.Sim_time.zero ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad duty rejected" true
    (try ignore (Sim.Clock.create k ~period:(ns 10) ~duty:1.5 ()); false
     with Invalid_argument _ -> true)

(* -- Vcd ----------------------------------------------------------- *)

let test_vcd_records_changes () =
  let k = Sim.Kernel.create () in
  let v = Sim.Vcd.create k () in
  let s1 = Sim.Signal.create k ~name:"counter" 0 in
  let s2 = Sim.Signal.create k ~name:"flag" false in
  Sim.Vcd.probe_int v ~name:"counter" ~width:8 s1;
  Sim.Vcd.probe_bool v ~name:"flag" s2;
  Sim.Kernel.spawn k (fun () ->
      for i = 1 to 3 do
        Sim.Kernel.wait_for (ms 1);
        Sim.Signal.write s1 i
      done;
      Sim.Signal.write s2 true);
  Sim.Kernel.run k;
  Alcotest.(check int) "four changes" 4 (Sim.Vcd.change_count v);
  let text = Sim.Vcd.render v in
  List.iter
    (fun fragment ->
      if not (Str_util.contains text fragment) then
        Alcotest.failf "VCD missing %S" fragment)
    [
      "$timescale 1ps $end";
      "$var wire 8 ! counter $end";
      "$var wire 1 \" flag $end";
      "$dumpvars";
      "#1000000000";
      "b00000011 !";
    ]

let test_vcd_rejects_duplicates () =
  let k = Sim.Kernel.create () in
  let v = Sim.Vcd.create k () in
  let s = Sim.Signal.create k 0 in
  Sim.Vcd.probe_int v ~name:"x" ~width:4 s;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Sim.Vcd.probe_int v ~name:"x" ~width:4 s;
       false
     with Invalid_argument _ -> true)

let test_vcd_zero_change_render () =
  let k = Sim.Kernel.create () in
  let v = Sim.Vcd.create k () in
  let s = Sim.Signal.create k 5 in
  Sim.Vcd.probe_int v ~name:"quiet" ~width:4 s;
  Sim.Kernel.run k;
  Alcotest.(check int) "no changes recorded" 0 (Sim.Vcd.change_count v);
  let text = Sim.Vcd.render v in
  (* Headers and the initial $dumpvars snapshot still render. *)
  List.iter
    (fun fragment ->
      if not (Str_util.contains text fragment) then
        Alcotest.failf "VCD missing %S" fragment)
    [ "$enddefinitions $end"; "$dumpvars"; "b0101 !" ];
  Alcotest.(check bool) "no time markers after the initial dump" false
    (Str_util.contains text "\n#")

let test_vcd_probe_projection_width () =
  let k = Sim.Kernel.create () in
  let v = Sim.Vcd.create k () in
  let s = Sim.Signal.create k (0, 0) in
  (* Custom projection: dump only the second tuple component, truncated
     to the declared 4-bit width. *)
  Sim.Vcd.probe v ~name:"snd" ~width:4 snd s;
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 1);
      Sim.Signal.write s (7, 0x1f));
  Sim.Kernel.run k;
  let text = Sim.Vcd.render v in
  Alcotest.(check bool) "declared width in header" true
    (Str_util.contains text "$var wire 4 ! snd $end");
  Alcotest.(check bool) "value truncated to width" true
    (Str_util.contains text "b1111 !");
  Alcotest.(check bool) "non-positive width rejected" true
    (try
       Sim.Vcd.probe v ~name:"bad" ~width:0 snd s;
       false
     with Invalid_argument _ -> true)

let test_vcd_negative_values () =
  let k = Sim.Kernel.create () in
  let v = Sim.Vcd.create k () in
  let s = Sim.Signal.create k 0 in
  Sim.Vcd.probe_int v ~name:"sgn" ~width:4 s;
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 1);
      Sim.Signal.write s (-1));
  Sim.Kernel.run k;
  Alcotest.(check bool) "two's complement" true
    (Str_util.contains (Sim.Vcd.render v) "b1111 !")

let monotonic_time_qcheck =
  QCheck.Test.make ~name:"kernel time is monotonic" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 1000))
    (fun delays ->
      let k = Sim.Kernel.create () in
      let ok = ref true in
      let last = ref Sim.Sim_time.zero in
      List.iteri
        (fun _ d ->
          Sim.Kernel.spawn k (fun () ->
              Sim.Kernel.wait_for (us d);
              if Sim.Sim_time.( < ) (Sim.Kernel.now k) !last then ok := false;
              last := Sim.Kernel.now k))
        delays;
      Sim.Kernel.run k;
      !ok)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "invalid" `Quick test_time_invalid;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "stable order" `Quick test_pqueue_order;
          qc test_pqueue_fifo_qcheck;
          Alcotest.test_case "pop clears vacated slot" `Quick
            test_pqueue_pop_clears_slot;
          Alcotest.test_case "pop_le" `Quick test_pqueue_pop_le;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "wait_for advances time" `Quick
            test_wait_for_advances_time;
          Alcotest.test_case "two processes interleave" `Quick
            test_two_processes_interleave;
          Alcotest.test_case "run until horizon" `Quick test_run_until;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "spawn during run" `Quick test_spawn_during_run;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "live process count" `Quick test_live_processes;
          Alcotest.test_case "live process names" `Quick
            test_live_process_names;
          qc monotonic_time_qcheck;
        ] );
      ( "event",
        [
          Alcotest.test_case "wakes all waiters" `Quick
            test_event_wakes_waiters;
          Alcotest.test_case "late waiter not woken" `Quick
            test_event_late_waiter_not_woken;
          Alcotest.test_case "timed notify" `Quick test_event_timed_notify;
          Alcotest.test_case "wait_any" `Quick test_wait_any;
          Alcotest.test_case "delta count" `Quick test_delta_count_advances;
          Alcotest.test_case "immediate notify" `Quick
            test_event_immediate_notify;
        ] );
      ( "signal",
        [
          Alcotest.test_case "update semantics" `Quick
            test_signal_update_semantics;
          Alcotest.test_case "last write wins" `Quick
            test_signal_last_write_wins;
          Alcotest.test_case "change event" `Quick test_signal_change_event;
          Alcotest.test_case "wait_value" `Quick test_signal_wait_value;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo order" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocks when full" `Quick
            test_mailbox_blocks_when_full;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records" `Quick test_trace;
          Alcotest.test_case "capacity ring" `Quick test_trace_capacity;
        ] );
      ( "clock",
        [
          Alcotest.test_case "edge count" `Quick test_clock_edges;
          Alcotest.test_case "wait_cycles" `Quick test_clock_wait_cycles;
          Alcotest.test_case "signal follows" `Quick test_clock_signal_follows;
          Alcotest.test_case "invalid configs" `Quick test_clock_invalid;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "records changes" `Quick test_vcd_records_changes;
          Alcotest.test_case "rejects duplicates" `Quick
            test_vcd_rejects_duplicates;
          Alcotest.test_case "zero-change render" `Quick
            test_vcd_zero_change_render;
          Alcotest.test_case "probe projection width" `Quick
            test_vcd_probe_projection_width;
          Alcotest.test_case "negative values" `Quick test_vcd_negative_values;
        ] );
    ]
