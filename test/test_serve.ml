(* Tests for the decode service layer: the LRU cache, workload specs,
   the scalable-decode equivalences the cache keys rely on, and the
   service's determinism and overload policies. *)

let qc = QCheck_alcotest.to_alcotest

(* -- LRU ------------------------------------------------------------- *)

let test_lru_capacity_one () =
  let c = Serve.Lru.create ~capacity:1 () in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  Alcotest.(check (option int)) "a evicted" None (Serve.Lru.find c "a");
  Alcotest.(check (option int)) "b present" (Some 2) (Serve.Lru.find c "b");
  Alcotest.(check int) "length" 1 (Serve.Lru.length c);
  let s = Serve.Lru.stats c in
  Alcotest.(check int) "one eviction" 1 s.Serve.Lru.evictions;
  Alcotest.(check int) "hits" 1 s.Serve.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Serve.Lru.misses

let test_lru_eviction_order () =
  (* A hit must refresh recency: after touching [a], inserting over
     capacity evicts [b], not [a]. *)
  let c = Serve.Lru.create ~capacity:2 () in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  Alcotest.(check (option int)) "touch a" (Some 1) (Serve.Lru.find c "a");
  Serve.Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Serve.Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Serve.Lru.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Serve.Lru.find c "c");
  (* Interleave further: touch c, insert d -> a goes. *)
  ignore (Serve.Lru.find c "c");
  Serve.Lru.add c "d" 4;
  Alcotest.(check (option int)) "a evicted second" None (Serve.Lru.find c "a");
  Alcotest.(check (option int)) "c still present" (Some 3) (Serve.Lru.find c "c")

let test_lru_collision_honesty () =
  (* With every key hashed to the same bucket, distinct keys must
     still resolve to their own values: the cache compares the full
     key on a hash match. *)
  let c = Serve.Lru.create ~hash:(fun _ -> 0) ~capacity:8 () in
  let keys = [ "alpha"; "beta"; "gamma"; "delta" ] in
  List.iteri (fun i k -> Serve.Lru.add c k (i * 10)) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check (option int)) k (Some (i * 10)) (Serve.Lru.find c k))
    keys;
  Alcotest.(check (option int)) "absent key" None (Serve.Lru.find c "epsilon")

let test_lru_replace_in_place () =
  let c = Serve.Lru.create ~capacity:2 () in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  Serve.Lru.add c "a" 9;
  Alcotest.(check int) "no growth" 2 (Serve.Lru.length c);
  Alcotest.(check (option int)) "updated" (Some 9) (Serve.Lru.find c "a");
  Alcotest.(check (option int)) "b untouched" (Some 2) (Serve.Lru.find c "b");
  Alcotest.(check int) "no eviction" 0 (Serve.Lru.stats c).Serve.Lru.evictions

let test_lru_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Serve.Lru.create: capacity < 1")
    (fun () -> ignore (Serve.Lru.create ~capacity:0 ()))

(* -- cache keys ------------------------------------------------------- *)

let test_cache_digest_discriminates () =
  let a = Serve.Cache.digest "stream one"
  and b = Serve.Cache.digest "stream two" in
  Alcotest.(check bool) "digests differ" true (a <> b);
  Alcotest.(check bool) "digest deterministic" true
    (Serve.Cache.digest "stream one" = a)

(* -- workload specs --------------------------------------------------- *)

let test_spec_parse_defaults () =
  match Serve.Request.parse_spec "open:" with
  | Error e -> Alcotest.failf "unexpected parse error: %s" e
  | Ok spec ->
    Alcotest.(check int) "n" 64 spec.Serve.Request.n;
    Alcotest.(check int) "seed" 11 spec.Serve.Request.seed;
    Alcotest.(check (float 1e-9)) "deadline" 25.0 spec.Serve.Request.deadline_ms;
    Alcotest.(check string) "canonical"
      "open:n=64,rate=400,seed=11,deadline=25,region=0.25,reduced=0.25"
      (Serve.Request.spec_to_string spec)

let test_spec_parse_roundtrip () =
  let s = "closed:n=32,clients=2,think=1.5,seed=9,deadline=10,region=0.5,reduced=0.1" in
  match Serve.Request.parse_spec s with
  | Error e -> Alcotest.failf "unexpected parse error: %s" e
  | Ok spec ->
    Alcotest.(check string) "roundtrip" s (Serve.Request.spec_to_string spec)

let test_spec_parse_errors () =
  let rejected s =
    match Serve.Request.parse_spec s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown shape" true (rejected "poisson:n=4");
  Alcotest.(check bool) "unknown key" true (rejected "open:n=4,bogus=1");
  Alcotest.(check bool) "bad int" true (rejected "open:n=four");
  Alcotest.(check bool) "shape key mismatch" true (rejected "open:clients=2");
  Alcotest.(check bool) "n < 1" true (rejected "open:n=0");
  Alcotest.(check bool) "rate <= 0" true (rejected "open:rate=0");
  Alcotest.(check bool) "shares sum > 1" true
    (rejected "open:region=0.8,reduced=0.8");
  Alcotest.(check bool) "negative share" true (rejected "open:region=-0.1");
  Alcotest.(check bool) "bad deadline" true (rejected "open:deadline=0")

(* -- scalable-decode equivalences (the cache-key semantics) ---------- *)

let encode_smooth ~width ~height ~seed =
  let img = Jpeg2000.Image.smooth ~width ~height ~components:3 ~seed in
  let config =
    { Jpeg2000.Encoder.default_lossless with tile_w = 32; tile_h = 32; levels = 3 }
  in
  (Jpeg2000.Encoder.encode config img, img)

let crop image ~x ~y ~w ~h =
  let cropped =
    Jpeg2000.Image.create ~width:w ~height:h
      ~components:(Jpeg2000.Image.components image)
      ~bit_depth:image.Jpeg2000.Image.bit_depth ()
  in
  Array.iteri
    (fun c (src : Jpeg2000.Image.plane) ->
      let dst = cropped.Jpeg2000.Image.planes.(c) in
      for dy = 0 to h - 1 do
        for dx = 0 to w - 1 do
          Jpeg2000.Image.plane_set dst ~x:dx ~y:dy
            (Jpeg2000.Image.plane_get src ~x:(x + dx) ~y:(y + dy))
        done
      done)
    image.Jpeg2000.Image.planes;
  cropped

let prop_region_equals_crop =
  QCheck.Test.make ~name:"decode_region equals crop of full decode" ~count:25
    QCheck.(
      quad (int_range 33 96) (int_range 33 96) (int_range 0 1000) small_int)
    (fun (width, height, pos_seed, img_seed) ->
      let data, _ = encode_smooth ~width ~height ~seed:img_seed in
      let full = Jpeg2000.Decoder.decode data in
      let rng = Faults.Rng.create pos_seed in
      let w = 1 + Faults.Rng.int rng width in
      let h = 1 + Faults.Rng.int rng height in
      let x = Faults.Rng.int rng (width - w + 1) in
      let y = Faults.Rng.int rng (height - h + 1) in
      Jpeg2000.Image.equal
        (Jpeg2000.Decoder.decode_region ~x ~y ~w ~h data)
        (crop full ~x ~y ~w ~h))

let prop_staged_matches_reduced =
  (* The staged pipeline (the serving layer's unit of work) must be
     bit-identical to [decode_reduced] at every resolution level the
     degrade path can pick — this is what makes cache keys
     (digest, tile, discard) sound. *)
  QCheck.Test.make ~name:"staged decode equals decode_reduced" ~count:15
    QCheck.(pair (int_range 0 2) small_int)
    (fun (discard, img_seed) ->
      let data, _ = encode_smooth ~width:96 ~height:64 ~seed:img_seed in
      let stream = Jpeg2000.Codestream.parse data in
      let header = stream.Jpeg2000.Codestream.header in
      let tiles =
        List.map
          (fun seg ->
            let st = Jpeg2000.Decoder.stage_tile ~discard header seg in
            let results =
              Array.init (Jpeg2000.Decoder.staged_jobs st)
                (Jpeg2000.Decoder.staged_job st)
            in
            let tile, concealed = Jpeg2000.Decoder.finish_staged st results in
            assert (concealed = 0);
            tile)
          stream.Jpeg2000.Codestream.tiles
      in
      let assembled =
        Jpeg2000.Tile.assemble
          ~width:(Jpeg2000.Decoder.reduced_size header.Jpeg2000.Codestream.width discard)
          ~height:(Jpeg2000.Decoder.reduced_size header.Jpeg2000.Codestream.height discard)
          ~components:header.Jpeg2000.Codestream.components
          ~bit_depth:header.Jpeg2000.Codestream.bit_depth tiles
      in
      Jpeg2000.Image.equal assembled
        (Jpeg2000.Decoder.decode_reduced ~discard_levels:discard data))

(* -- service ---------------------------------------------------------- *)

let corpus () =
  Array.init 2 (fun i ->
      Models.Workload.codestream ~width:64 ~height:64 ~seed:(2008 + i)
        Jpeg2000.Codestream.Lossless)

let spec_exn s =
  match Serve.Request.parse_spec s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "bad spec %S: %s" s e

let report_string r =
  Telemetry.Json.to_string (Serve.Service.report_to_json r)

let test_service_same_seed_identical () =
  let service = Serve.Service.create (corpus ()) in
  let spec = spec_exn "open:n=24,rate=800,seed=5" in
  let a = Serve.Service.run service spec in
  let service2 = Serve.Service.create (corpus ()) in
  let b = Serve.Service.run service2 spec in
  Alcotest.(check string) "same seed, same report" (report_string a)
    (report_string b);
  let c = Serve.Service.run service2 (spec_exn "open:n=24,rate=800,seed=6") in
  Alcotest.(check bool) "different seed, different digest" true
    (a.Serve.Service.pixels_digest <> c.Serve.Service.pixels_digest)

let test_service_jobs_invariant () =
  (* The report and every served image must be independent of the
     worker count. *)
  let spec = spec_exn "closed:n=20,clients=3,think=0.5,seed=13" in
  let run_with jobs =
    let images = ref [] in
    let service = Serve.Service.create (corpus ()) in
    let report =
      Par.Pool.with_jobs jobs (fun pool ->
          Serve.Service.run ~pool
            ~on_complete:(fun r img -> images := (r.Serve.Request.id, img) :: !images)
            service spec)
    in
    (report_string report, List.rev !images)
  in
  let ra, ia = run_with 1 in
  let rb, ib = run_with 2 in
  let rc, ic = run_with 4 in
  Alcotest.(check string) "jobs=2 report" ra rb;
  Alcotest.(check string) "jobs=4 report" ra rc;
  let same (id1, img1) (id2, img2) = id1 = id2 && Jpeg2000.Image.equal img1 img2 in
  Alcotest.(check bool) "jobs=2 images" true (List.for_all2 same ia ib);
  Alcotest.(check bool) "jobs=4 images" true (List.for_all2 same ia ic)

let test_service_matches_reference_decoder () =
  (* Every served image must equal what the reference decoder
     produces for the request's (possibly degraded) target. *)
  let streams = corpus () in
  let service = Serve.Service.create streams in
  let checked = ref 0 in
  let report =
    Serve.Service.run
      ~on_complete:(fun r img ->
        let data = streams.(r.Serve.Request.stream) in
        let reference =
          match r.Serve.Request.target with
          | Serve.Request.Full -> Jpeg2000.Decoder.decode data
          | Serve.Request.Region { rx; ry; rw; rh } ->
            Jpeg2000.Decoder.decode_region ~x:rx ~y:ry ~w:rw ~h:rh data
          | Serve.Request.Reduced { discard } ->
            Jpeg2000.Decoder.decode_reduced ~discard_levels:discard data
        in
        incr checked;
        if not (Jpeg2000.Image.equal img reference) then
          Alcotest.failf "request %d (%s) diverges from the reference decoder"
            r.Serve.Request.id
            (Format.asprintf "%a" Serve.Request.pp_target r.Serve.Request.target))
      service
      (spec_exn "open:n=30,rate=600,seed=21")
  in
  Alcotest.(check int) "all served requests checked" report.Serve.Service.served
    !checked;
  Alcotest.(check bool) "exercised the cache" true
    (report.Serve.Service.cache_hits > 0)

let test_service_counters_balance () =
  let service = Serve.Service.create (corpus ()) in
  let r = Serve.Service.run service (spec_exn "open:n=40,rate=1500,seed=3") in
  Alcotest.(check int) "total = served + rejected + dropped"
    r.Serve.Service.total
    (r.Serve.Service.served + r.Serve.Service.rejected + r.Serve.Service.dropped)

let overload_config policy =
  {
    Serve.Service.default_config with
    Serve.Service.queue_capacity = 4;
    overload = policy;
    cache_capacity = 8;
  }

let stress_spec = "open:n=80,rate=4000,seed=17"

let test_policy_reject () =
  let service =
    Serve.Service.create ~config:(overload_config Serve.Service.Reject) (corpus ())
  in
  let r = Serve.Service.run service (spec_exn stress_spec) in
  Alcotest.(check bool) "rejects under overload" true (r.Serve.Service.rejected > 0);
  Alcotest.(check int) "never drops" 0 r.Serve.Service.dropped;
  Alcotest.(check bool) "refusals count as SLO misses" true
    (r.Serve.Service.slo_misses >= r.Serve.Service.rejected)

let test_policy_drop_oldest () =
  let service =
    Serve.Service.create
      ~config:(overload_config Serve.Service.Drop_oldest)
      (corpus ())
  in
  let r = Serve.Service.run service (spec_exn stress_spec) in
  Alcotest.(check bool) "drops under overload" true (r.Serve.Service.dropped > 0);
  Alcotest.(check int) "never rejects" 0 r.Serve.Service.rejected

let test_policy_degrade () =
  let service =
    Serve.Service.create ~config:(overload_config Serve.Service.Degrade) (corpus ())
  in
  let r = Serve.Service.run service (spec_exn stress_spec) in
  Alcotest.(check bool) "degrades under overload" true
    (r.Serve.Service.degraded > 0)

(* -- ingest ------------------------------------------------------------ *)

let ingest_config s =
  match Faults.Ingest.parse_spec s with
  | Ok spec ->
    { Serve.Service.default_config with Serve.Service.ingest = Some spec }
  | Error e -> Alcotest.failf "bad ingest spec: %s" e

let test_ingest_jobs_invariant () =
  (* Faulted ingest reports must stay byte-identical across worker
     counts, like everything else the service prints. *)
  let spec = spec_exn "open:n=24,rate=600,seed=11,deadline=6" in
  let config =
    ingest_config
      "chunk=256,gap_us=300,loss=0.05,dup=0.05,reorder=0.1,stall=0.2,stall_us=2000"
  in
  let run_with jobs =
    let service = Serve.Service.create ~config (corpus ()) in
    report_string
      (Par.Pool.with_jobs jobs (fun pool ->
           Serve.Service.run ~pool service spec))
  in
  let a = run_with 1 in
  Alcotest.(check string) "jobs=2 byte-equal" a (run_with 2);
  Alcotest.(check string) "jobs=4 byte-equal" a (run_with 4);
  let service = Serve.Service.create ~config (corpus ()) in
  let r = Serve.Service.run service spec in
  Alcotest.(check string) "rerun byte-equal" a (report_string r);
  match r.Serve.Service.ingest with
  | None -> Alcotest.fail "report lacks ingest stats"
  | Some i ->
    Alcotest.(check bool) "chunks lost" true
      (i.Serve.Service.ing_chunks_lost > 0);
    Alcotest.(check bool) "flushes happened" true
      (i.Serve.Service.ing_flushed > 0);
    Alcotest.(check bool) "tiles concealed" true
      (i.Serve.Service.ing_flush_concealed_tiles > 0);
    Alcotest.(check bool) "psnr impact finite" true
      (Float.is_finite i.Serve.Service.ing_flush_psnr_db)

let test_ingest_flush_equals_robust_prefix () =
  (* A deadline flush must serve exactly decode_robust of the
     contiguous prefix the stream had delivered. *)
  let config = ingest_config "chunk=256,loss=0.1,stall=0.3,stall_us=3000" in
  let service = Serve.Service.create ~config (corpus ()) in
  let flushes = ref 0 in
  let report =
    Serve.Service.run
      ~on_flush:(fun _r ~prefix img ->
        incr flushes;
        match Jpeg2000.Decoder.decode_robust prefix with
        | Ok (want, _) ->
          if not (Jpeg2000.Image.equal img want) then
            Alcotest.fail "flush image diverges from decode_robust of prefix"
        | Error _ -> Alcotest.fail "flushed prefix did not robust-decode")
      service
      (spec_exn "open:n=20,rate=500,seed=9,deadline=5")
  in
  Alcotest.(check bool) "some requests flushed" true (!flushes > 0);
  (match report.Serve.Service.ingest with
  | Some i ->
    Alcotest.(check int) "flush count matches" !flushes
      i.Serve.Service.ing_flushed
  | None -> Alcotest.fail "report lacks ingest stats");
  Alcotest.(check int) "counters still balance" report.Serve.Service.total
    (report.Serve.Service.served + report.Serve.Service.rejected
   + report.Serve.Service.dropped)

let test_ingest_clean_streaming_serves_all () =
  (* Fault-free streaming under a roomy deadline: delivery only adds
     latency; every request is served by the normal path. *)
  let config = ingest_config "" in
  let service = Serve.Service.create ~config (corpus ()) in
  let r =
    Serve.Service.run service (spec_exn "open:n=16,rate=300,seed=4,deadline=60")
  in
  Alcotest.(check int) "all served" r.Serve.Service.total r.Serve.Service.served;
  match r.Serve.Service.ingest with
  | Some i ->
    Alcotest.(check int) "no flushes" 0 i.Serve.Service.ing_flushed;
    Alcotest.(check int) "no loss" 0 i.Serve.Service.ing_chunks_lost;
    Alcotest.(check bool) "bytes accounted" true
      (i.Serve.Service.ing_bytes > 0)
  | None -> Alcotest.fail "report lacks ingest stats"

(* -- profiling ------------------------------------------------------- *)

let test_profile_jobs_and_rerun_identical () =
  (* The cost tree is built from virtual-time spans emitted on the
     coordinating domain, so the collapsed flamegraph text must be
     byte-identical across worker counts and across reruns. *)
  let spec = spec_exn "open:n=24,rate=600,seed=11" in
  let run_with jobs =
    let service = Serve.Service.create (corpus ()) in
    let sink, _report =
      Telemetry.Sink.with_sink (fun () ->
          Par.Pool.with_jobs jobs (fun pool ->
              Serve.Service.run ~pool service spec))
    in
    Telemetry.Profile.collapsed
      (Telemetry.Profile.of_events (Telemetry.Sink.events sink))
  in
  let a = run_with 1 in
  Alcotest.(check bool) "tree is non-trivial" true (String.length a > 1);
  Alcotest.(check string) "jobs=2 byte-identical" a (run_with 2);
  Alcotest.(check string) "jobs=4 byte-identical" a (run_with 4);
  Alcotest.(check string) "rerun byte-identical" a (run_with 1)

let test_profile_stage_spans_tile_requests () =
  (* Stage child spans (cache/entropy/reconstruct/assemble) must tile
     each request span exactly: the tree invariant holds and the
     request nodes carry no unattributed self time. *)
  let service = Serve.Service.create (corpus ()) in
  let sink, _ =
    Telemetry.Sink.with_sink (fun () ->
        Serve.Service.run service (spec_exn "open:n=30,rate=600,seed=21"))
  in
  let p = Telemetry.Profile.of_events (Telemetry.Sink.events sink) in
  Alcotest.(check bool) "invariant" true (Telemetry.Profile.invariant p);
  match Telemetry.Profile.find p "serve.exec;request" with
  | None -> Alcotest.fail "no request node under serve.exec"
  | Some n ->
    Alcotest.(check bool) "requests profiled" true
      (n.Telemetry.Profile.count > 0);
    Alcotest.(check int) "stages tile the request span exactly" 0
      n.Telemetry.Profile.self_ps;
    Alcotest.(check bool) "stage children present" true
      (List.exists
         (fun c -> c.Telemetry.Profile.name = "entropy")
         n.Telemetry.Profile.children)

let test_profile_p99_exemplar_resolves () =
  (* The latency histogram's tail exemplar must name a request whose
     trace id recomputes from (seed, id) — the link from a p99 line
     back to that request's spans. *)
  let spec = spec_exn "open:n=30,rate=600,seed=21" in
  let service = Serve.Service.create (corpus ()) in
  let sink, _ =
    Telemetry.Sink.with_sink (fun () -> Serve.Service.run service spec)
  in
  let report = Telemetry.Sink.report sink in
  match Telemetry.Report.dist report "serve.latency_us" with
  | None -> Alcotest.fail "no serve.latency_us histogram"
  | Some d -> (
    match Telemetry.Report.quantile_exemplar d 0.99 with
    | None -> Alcotest.fail "p99 exemplar missing"
    | Some e ->
      let id = e.Telemetry.Metrics.ex_id in
      let expected =
        Serve.Request.trace_to_string
          (Serve.Request.trace_id ~seed:spec.Serve.Request.seed id)
      in
      Alcotest.(check string) "exemplar trace matches trace_id(seed, id)"
        expected e.Telemetry.Metrics.ex_trace;
      (* And that trace id is attached to the request's exec span. *)
      let tagged =
        List.exists
          (fun ev ->
            List.exists
              (fun (k, v) ->
                k = "trace"
                && v = Telemetry.Event.Str e.Telemetry.Metrics.ex_trace)
              ev.Telemetry.Event.args)
          (Telemetry.Sink.events sink)
      in
      Alcotest.(check bool) "trace id appears in span args" true tagged)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Serve.Service.overload_of_string (Serve.Service.overload_to_string p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | Error e -> Alcotest.fail e)
    [ Serve.Service.Reject; Serve.Service.Drop_oldest; Serve.Service.Degrade ];
  Alcotest.(check bool) "unknown name rejected" true
    (Result.is_error (Serve.Service.overload_of_string "lifo"))

let () =
  Alcotest.run "serve"
    [
      ( "lru",
        [
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "collision honesty" `Quick test_lru_collision_honesty;
          Alcotest.test_case "replace in place" `Quick test_lru_replace_in_place;
          Alcotest.test_case "bad capacity" `Quick test_lru_rejects_bad_capacity;
          Alcotest.test_case "digest" `Quick test_cache_digest_discriminates;
        ] );
      ( "workload specs",
        [
          Alcotest.test_case "defaults" `Quick test_spec_parse_defaults;
          Alcotest.test_case "roundtrip" `Quick test_spec_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_parse_errors;
        ] );
      ( "scalable decode",
        [ qc prop_region_equals_crop; qc prop_staged_matches_reduced ] );
      ( "service",
        [
          Alcotest.test_case "same seed identical" `Quick
            test_service_same_seed_identical;
          Alcotest.test_case "jobs invariant" `Quick test_service_jobs_invariant;
          Alcotest.test_case "matches reference decoder" `Quick
            test_service_matches_reference_decoder;
          Alcotest.test_case "counters balance" `Quick test_service_counters_balance;
        ] );
      ( "overload policies",
        [
          Alcotest.test_case "reject" `Quick test_policy_reject;
          Alcotest.test_case "drop-oldest" `Quick test_policy_drop_oldest;
          Alcotest.test_case "degrade" `Quick test_policy_degrade;
          Alcotest.test_case "names" `Quick test_policy_names_roundtrip;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "collapsed tree jobs/rerun invariant" `Quick
            test_profile_jobs_and_rerun_identical;
          Alcotest.test_case "stage spans tile requests" `Quick
            test_profile_stage_spans_tile_requests;
          Alcotest.test_case "p99 exemplar resolves to a trace" `Quick
            test_profile_p99_exemplar_resolves;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "jobs/rerun invariant" `Quick
            test_ingest_jobs_invariant;
          Alcotest.test_case "flush equals robust prefix" `Quick
            test_ingest_flush_equals_robust_prefix;
          Alcotest.test_case "clean streaming serves all" `Quick
            test_ingest_clean_streaming_serves_all;
        ] );
    ]
