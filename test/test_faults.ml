(* Tests for the fault-injection engine, the hardened RMI transport
   and the robust decoder path. *)

let qc = QCheck_alcotest.to_alcotest
let time = Alcotest.testable Sim.Sim_time.pp Sim.Sim_time.equal
let ms = Sim.Sim_time.ms
let us = Sim.Sim_time.us
let clock_hz = 100_000_000

(* -- CRC codec ----------------------------------------------------- *)

let int32_array_gen =
  QCheck.(array_of_size Gen.(int_range 0 32) (map Int32.of_int int))

let nonempty_int32_array_gen =
  QCheck.(array_of_size Gen.(int_range 1 32) (map Int32.of_int int))

let crc_roundtrip_qcheck =
  QCheck.Test.make ~name:"CRC frame/check round-trips" ~count:300
    int32_array_gen
    (fun payload ->
      match Osss.Crc.check (Osss.Crc.frame payload) with
      | Some p -> p = payload
      | None -> false)

let crc_detects_bit_flip_qcheck =
  QCheck.Test.make ~name:"CRC detects any single bit flip" ~count:300
    QCheck.(triple nonempty_int32_array_gen small_nat small_nat)
    (fun (payload, wi, bi) ->
      let framed = Osss.Crc.frame payload in
      let wi = wi mod Array.length framed and bi = bi mod 32 in
      let corrupted = Array.copy framed in
      corrupted.(wi) <- Int32.logxor corrupted.(wi) (Int32.shift_left 1l bi);
      Osss.Crc.check corrupted = None)

let test_crc_detects_word_drop () =
  let payload = [| 0x12345678l; 0xDEADBEEFl; 0x0l; 0xFFFFFFFFl |] in
  let framed = Osss.Crc.frame payload in
  (* Dropping the second word shifts the tail under the CRC. *)
  let dropped =
    Array.init
      (Array.length framed - 1)
      (fun i -> if i < 1 then framed.(i) else framed.(i + 1))
  in
  Alcotest.(check bool) "drop detected" true (Osss.Crc.check dropped = None);
  Alcotest.(check bool) "empty frame invalid" true (Osss.Crc.check [||] = None)

(* -- RNG ----------------------------------------------------------- *)

let test_rng_determinism () =
  let draw seed =
    let r = Faults.Rng.create seed in
    List.init 64 (fun _ -> Faults.Rng.next r)
  in
  Alcotest.(check bool) "same seed, same stream" true (draw 7 = draw 7);
  Alcotest.(check bool) "different seed, different stream" true
    (draw 7 <> draw 8);
  let r = Faults.Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Faults.Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Faults.Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done;
  (* hash64 is pure: same inputs, same output, order-free. *)
  Alcotest.(check bool) "hash64 pure" true
    (Faults.Rng.hash64 5L 9L = Faults.Rng.hash64 5L 9L)

(* -- Engine determinism -------------------------------------------- *)

let engine_trace seed =
  let e = Faults.Engine.create ~seed (Faults.Engine.channel_only 0.5) in
  Faults.Engine.install e;
  Fun.protect ~finally:Faults.Engine.uninstall (fun () ->
      let hook = Option.get (Osss.Fault_hooks.channel ()) in
      let outputs =
        List.init 50 (fun i ->
            hook ~link:"l" (Array.init 8 (fun j -> Int32.of_int ((i * 8) + j))))
      in
      let c = Faults.Engine.counters e in
      (outputs, c.Faults.Engine.bit_flips, c.Faults.Engine.word_drops))

let test_engine_determinism () =
  let t1 = engine_trace 42 and t2 = engine_trace 42 in
  Alcotest.(check bool) "same seed replays same faults" true (t1 = t2);
  let _, flips, drops = t1 in
  Alcotest.(check bool) "faults actually injected" true (flips + drops > 0)

let test_engine_rejects_bad_rates () =
  let bad =
    { Faults.Engine.no_faults with Faults.Engine.channel_bit_flip = 1.5 }
  in
  Alcotest.(check bool) "rate > 1 rejected" true
    (try
       ignore (Faults.Engine.create ~seed:1 bad);
       false
     with Invalid_argument _ -> true);
  (* Zero rates claim no hook points at all. *)
  let e = Faults.Engine.create ~seed:1 Faults.Engine.no_faults in
  Faults.Engine.install e;
  Fun.protect ~finally:Faults.Engine.uninstall (fun () ->
      Alcotest.(check bool) "no hooks for no faults" false
        (Osss.Fault_hooks.active ()))

(* -- Memory faults ------------------------------------------------- *)

let mem_rates ?(transient = 0.0) ?(stuck = 0.0) () =
  {
    Faults.Engine.no_faults with
    Faults.Engine.memory_transient = transient;
    memory_stuck_cell = stuck;
  }

let popcount32 x =
  let n = ref 0 in
  for b = 0 to 31 do
    if Int32.logand (Int32.shift_right_logical x b) 1l = 1l then incr n
  done;
  !n

let test_memory_transient_fault () =
  let k = Sim.Kernel.create () in
  let m = Osss.Memory.register_file k ~name:"rf" ~size_words:16 in
  let e = Faults.Engine.create ~seed:11 (mem_rates ~transient:1.0 ()) in
  Faults.Engine.with_engine e (fun () ->
      Osss.Memory.write m 3 0x0F0F0F0Fl;
      let v = Osss.Memory.read m 3 in
      Alcotest.(check int) "exactly one bit flipped" 1
        (popcount32 (Int32.logxor v 0x0F0F0F0Fl)));
  (* Transients corrupt the read value, not the storage. *)
  Alcotest.(check int32) "storage intact after uninstall" 0x0F0F0F0Fl
    (Osss.Memory.read m 3);
  Alcotest.(check bool) "transients counted" true
    ((Faults.Engine.counters e).Faults.Engine.mem_transients > 0)

let test_memory_stuck_cell () =
  let stuck_values seed order =
    let k = Sim.Kernel.create () in
    let m = Osss.Memory.register_file k ~name:"bram" ~size_words:16 in
    let e = Faults.Engine.create ~seed (mem_rates ~stuck:1.0 ()) in
    Faults.Engine.with_engine e (fun () ->
        List.iter (fun a -> Osss.Memory.write m a 0l) order;
        List.map (fun a -> (a, Osss.Memory.read m a)) (List.sort compare order))
  in
  let a = stuck_values 5 [ 0; 1; 2; 3 ] and b = stuck_values 5 [ 3; 2; 1; 0 ] in
  (* The stuck fate of a cell is a pure function of (seed, mem, addr):
     access order must not matter. *)
  Alcotest.(check bool) "stuck fates independent of access order" true (a = b);
  (* With every cell stuck, a write of 0 must read back non-zero
     somewhere (some cell has a bit stuck at 1) — and repeatably so. *)
  Alcotest.(check bool) "same seed, same stuck pattern" true
    (stuck_values 5 [ 0; 1; 2; 3 ] = a)

(* -- Stall jitter --------------------------------------------------- *)

let stall_run seed =
  let k = Sim.Kernel.create () in
  let proc = Osss.Processor.create k ~name:"cpu" ~clock_hz () in
  let t = Osss.Sw_task.create k ~name:"t" (fun t -> Osss.Sw_task.consume t (ms 1)) in
  Osss.Sw_task.map_to_processor t proc;
  let e =
    Faults.Engine.create ~seed
      {
        Faults.Engine.no_faults with
        Faults.Engine.stall_probability = 1.0;
        stall_max_cycles = 100;
      }
  in
  Faults.Engine.with_engine e (fun () -> Sim.Kernel.run k);
  (Sim.Kernel.now k, (Faults.Engine.counters e).Faults.Engine.stall_cycles)

let test_stall_jitter () =
  let now, cycles = stall_run 21 in
  Alcotest.(check bool) "stall cycles injected" true (cycles > 0);
  Alcotest.check time "jitter extends execution"
    (Sim.Sim_time.add (ms 1) (Sim.Sim_time.cycles ~hz:clock_hz cycles))
    now;
  Alcotest.(check bool) "jitter deterministic" true (stall_run 21 = stall_run 21)

(* -- Hardened RMI --------------------------------------------------- *)

(* One RMI call over a protected P2P link whose [nth] frame attempts
   get one bit flipped in flight. Returns (functional result, elapsed,
   transport stats). *)
let rmi_under_flips ~protection ~corrupt_attempts =
  let k = Sim.Kernel.create () in
  let so =
    Osss.Shared_object.create k ~name:"coproc"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      (ref 0)
  in
  let client = Osss.Shared_object.register_client so ~name:"sw" () in
  let transport = Osss.Channel.p2p k ~clock_hz ~name:"link" () in
  Osss.Channel.set_protection transport protection;
  let doubler =
    Osss.Channel.rmi_method ~name:"double" ~args:Osss.Serialisation.int_array
      ~ret:Osss.Serialisation.int_array
      ~execution_time:(fun a -> us (Array.length a))
      (fun state a ->
        incr state;
        Array.map (fun x -> 2 * x) a)
  in
  let attempt = ref 0 in
  Osss.Fault_hooks.set_channel (fun ~link:_ words ->
      incr attempt;
      if corrupt_attempts !attempt then begin
        (* Flip a bit in the last word: a payload value word when
           unprotected, the CRC word itself when protected — either
           way the frame is damaged without breaking the length
           prefix. *)
        let w = Array.copy words in
        let i = Array.length w - 1 in
        w.(i) <- Int32.logxor w.(i) 0x40l;
        w
      end
      else words);
  Fun.protect ~finally:Osss.Fault_hooks.clear (fun () ->
      let result = ref [||] in
      Sim.Kernel.spawn k (fun () ->
          result := Osss.Channel.rmi_call transport so client doubler [| 1; 2; 3 |]);
      Sim.Kernel.run k;
      (!result, Sim.Kernel.now k, Osss.Channel.stats transport))

let test_crc_retry_recovers_flip () =
  (* Baseline: protected link, no faults. *)
  let clean, t_clean, s_clean =
    rmi_under_flips ~protection:(Osss.Channel.crc_retry ())
      ~corrupt_attempts:(fun _ -> false)
  in
  Alcotest.(check (array int)) "clean result" [| 2; 4; 6 |] clean;
  Alcotest.(check int) "no clean retries" 0 s_clean.Osss.Channel.retries;
  Alcotest.check time "no clean retry time" Sim.Sim_time.zero
    s_clean.Osss.Channel.retry_time;
  (* Inject one flip into the first frame: recovered transparently. *)
  let r, t_faulted, s =
    rmi_under_flips ~protection:(Osss.Channel.crc_retry ())
      ~corrupt_attempts:(fun n -> n = 1)
  in
  Alcotest.(check (array int)) "recovered result" [| 2; 4; 6 |] r;
  Alcotest.(check int) "one CRC error" 1 s.Osss.Channel.crc_errors;
  Alcotest.(check int) "one retry" 1 s.Osss.Channel.retries;
  Alcotest.(check int) "no giveup" 0 s.Osss.Channel.giveups;
  (* The retransmission is paid for in simulated time, not free. *)
  Alcotest.(check bool) "retry time measured" true
    (Sim.Sim_time.compare s.Osss.Channel.retry_time Sim.Sim_time.zero > 0);
  Alcotest.(check bool) "recovery costs simulated time" true
    (Sim.Sim_time.compare t_faulted t_clean > 0)

let test_unprotected_flip_corrupts () =
  (* The same single flip without protection reaches the deserialiser:
     the functional result is wrong — that is what the CRC buys. *)
  let r, _, s =
    rmi_under_flips ~protection:Osss.Channel.Unprotected
      ~corrupt_attempts:(fun n -> n = 1)
  in
  Alcotest.(check bool) "corruption passes through" true (r <> [| 2; 4; 6 |]);
  Alcotest.(check int) "nothing detected" 0 s.Osss.Channel.crc_errors

let test_retry_budget_exhaustion () =
  let raised = ref false in
  let stats = ref None in
  (try
     ignore
       (rmi_under_flips
          ~protection:
            (Osss.Channel.crc_retry ~max_retries:3 ~timeout_cycles:8
               ~backoff_base_cycles:4 ())
          ~corrupt_attempts:(fun _ -> true))
   with Osss.Channel.Transfer_failed { link; what; attempts } ->
     raised := true;
     Alcotest.(check string) "failing link" "link" link;
     Alcotest.(check bool) "what names the method frame" true
       (what = "double:args");
     Alcotest.(check int) "attempts = 1 + max_retries" 4 attempts;
     stats := Some ());
  Alcotest.(check bool) "Transfer_failed raised" true !raised;
  Alcotest.(check bool) "giveup observed" true (!stats <> None)

let test_payload_transfer_protected () =
  let k = Sim.Kernel.create () in
  let transport = Osss.Channel.p2p k ~clock_hz ~name:"pad" () in
  Osss.Channel.set_protection transport (Osss.Channel.crc_retry ());
  let first = ref true in
  Osss.Fault_hooks.set_frame (fun ~link:_ ~words:_ ->
      if !first then begin
        first := false;
        true
      end
      else false);
  Fun.protect ~finally:Osss.Fault_hooks.clear (fun () ->
      Sim.Kernel.spawn k (fun () ->
          Osss.Channel.payload_transfer transport ~words:1024);
      Sim.Kernel.run k);
  let s = Osss.Channel.stats transport in
  Alcotest.(check int) "pad frame retried once" 1 s.Osss.Channel.retries;
  Alcotest.(check int) "no giveup" 0 s.Osss.Channel.giveups;
  (* Elapsed: one clean transfer + one corrupted attempt + timeout +
     backoff — strictly more than two bare transfers. *)
  Alcotest.(check bool) "retransmission cost visible" true
    (Sim.Sim_time.compare (Sim.Kernel.now k)
       (Osss.Channel.transfer_time_unloaded transport ~words:2048)
    > 0)

(* -- Robust decoder fuzzing ---------------------------------------- *)

let fuzz_config =
  {
    Jpeg2000.Encoder.tile_w = 16;
    tile_h = 16;
    levels = 2;
    mode = Jpeg2000.Codestream.Lossless;
    base_step = 2.0;
    code_block = 8;
  }

let fuzz_stream =
  lazy
    (let image =
       Jpeg2000.Image.smooth ~width:32 ~height:32 ~components:3 ~seed:7
     in
     Jpeg2000.Encoder.encode fuzz_config image)

let corrupt_stream rng data =
  let b = Bytes.of_string data in
  let n = Bytes.length b in
  (* Random mix of damage: truncation, bit flips, byte stomps. *)
  let truncated =
    if Faults.Rng.bool rng then Bytes.sub b 0 (Faults.Rng.int rng (n + 1)) else b
  in
  let m = Bytes.length truncated in
  if m > 0 then
    for _ = 1 to 1 + Faults.Rng.int rng 16 do
      let i = Faults.Rng.int rng m in
      if Faults.Rng.bool rng then
        Bytes.set truncated i
          (Char.chr
             (Char.code (Bytes.get truncated i) lxor (1 lsl Faults.Rng.int rng 8)))
      else Bytes.set truncated i (Char.chr (Faults.Rng.int rng 256))
    done;
  Bytes.to_string truncated

let test_fuzz_decode_robust_total () =
  let data = Lazy.force fuzz_stream in
  let rng = Faults.Rng.create 2008 in
  let oks = ref 0 and errors = ref 0 in
  for case = 1 to 1000 do
    let corrupted = corrupt_stream rng data in
    match Jpeg2000.Decoder.decode_robust corrupted with
    | Ok (image, report) ->
      incr oks;
      (* The frame is sized by whatever header the bytes declare —
         32x32 unless the damage landed in the preamble itself (a
         truncated prefix decodes best-effort once its preamble is
         complete, so a self-consistent flipped header can survive). *)
      (match Jpeg2000.Codestream.read_preamble corrupted ~pos:0 with
      | Jpeg2000.Codestream.Unit_ready ((header, _), _) ->
        Alcotest.(check bool) "header-size image" true
          (Jpeg2000.Image.width image = header.Jpeg2000.Codestream.width
          && Jpeg2000.Image.height image = header.Jpeg2000.Codestream.height)
      | _ -> Alcotest.fail "Ok decode without a parseable preamble");
      Alcotest.(check bool) "report counts sane" true
        (report.Jpeg2000.Decoder.concealed_blocks >= 0
        && report.Jpeg2000.Decoder.concealed_tiles
           <= report.Jpeg2000.Decoder.total_tiles)
    | Error _ -> incr errors
    | exception e ->
      Alcotest.failf "case %d: decode_robust raised %s" case
        (Printexc.to_string e)
  done;
  (* The corpus must exercise both outcomes, or the test is vacuous. *)
  Alcotest.(check bool) "some streams still parse" true (!oks > 0);
  Alcotest.(check bool) "some streams rejected" true (!errors > 0)

let test_decode_robust_clean_stream () =
  let data = Lazy.force fuzz_stream in
  match Jpeg2000.Decoder.decode_robust data with
  | Ok (image, report) ->
    Alcotest.(check bool) "no damage on clean stream" true
      (Jpeg2000.Decoder.no_damage report);
    Alcotest.(check bool) "identical to strict decode" true
      (Jpeg2000.Image.equal image (Jpeg2000.Decoder.decode data))
  | Error e -> Alcotest.failf "clean stream rejected: %s" (Jpeg2000.Codestream.error_message e)

let test_parse_result_typed_errors () =
  let data = Lazy.force fuzz_stream in
  (match Jpeg2000.Codestream.parse_result "" with
  | Error Jpeg2000.Codestream.Bad_magic -> ()
  | _ -> Alcotest.fail "empty stream should fail the magic check");
  (match Jpeg2000.Codestream.parse_result "garbage-not-a-codestream" with
  | Error Jpeg2000.Codestream.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic expected");
  let truncated = String.sub data 0 (String.length data / 2) in
  (match Jpeg2000.Codestream.parse_result truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated stream should not parse");
  match Jpeg2000.Codestream.parse_result data with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "well-formed stream rejected: %s"
      (Jpeg2000.Codestream.error_message e)

(* -- Campaign ------------------------------------------------------- *)

let test_campaign_deterministic () =
  let config =
    Models.Campaign.default ~seed:99 ~rates:[ 0.02 ]
      ~versions:[ Models.Experiment.V2 ] ()
  in
  let render () = Models.Campaign.render config (Models.Campaign.run config) in
  let a = render () in
  Alcotest.(check string) "two runs render identically" a (render ());
  Alcotest.(check bool) "table has the version row" true
    (Str_util.contains a "2")

let test_campaign_concealment_visible () =
  (* At a high stream-corruption rate the robust workload must
     actually conceal blocks, and the run must stay functional. *)
  let w =
    Models.Workload.make ~corrupt:(123, 0.02) Jpeg2000.Codestream.Lossless
  in
  Alcotest.(check bool) "corruption flagged" true (Models.Workload.corrupted w);
  Alcotest.(check bool) "blocks concealed" true
    (Models.Workload.concealed_blocks w > 0);
  let psnr = Models.Workload.psnr_db w in
  Alcotest.(check bool) "PSNR impact finite" true
    (Float.is_finite psnr && psnr > 10.0);
  let o = Models.Experiment.run_workload Models.Experiment.V1 w in
  Alcotest.(check (option bool)) "staged decode matches robust reference"
    (Some true) o.Models.Outcome.functional_ok;
  Alcotest.(check int) "concealment surfaced in outcome"
    (Models.Workload.concealed_blocks w)
    o.Models.Outcome.resilience.Models.Outcome.concealed_blocks

(* -- ingest faults ----------------------------------------------------- *)

let ingest_payload = String.init 10_000 (fun i -> Char.chr (i land 0xff))

let ingest_spec_exn s =
  match Faults.Ingest.parse_spec s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "bad ingest spec %S: %s" s e

let test_ingest_schedule_deterministic () =
  let spec = ingest_spec_exn "loss=0.1,dup=0.1,reorder=0.2,stall=0.3" in
  let a = Faults.Ingest.schedule ~seed:7 spec ~start_ps:1000 ingest_payload in
  let b = Faults.Ingest.schedule ~seed:7 spec ~start_ps:1000 ingest_payload in
  Alcotest.(check bool) "equal seeds, equal deliveries" true (a = b);
  let c = Faults.Ingest.schedule ~seed:8 spec ~start_ps:1000 ingest_payload in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_ingest_schedule_bounds () =
  let spec = ingest_spec_exn "chunk=256,loss=0.2,dup=0.2,reorder=0.3,stall=0.2" in
  let d = Faults.Ingest.schedule ~seed:42 spec ~start_ps:0 ingest_payload in
  let n = String.length ingest_payload in
  Alcotest.(check int) "sent covers the stream" ((n + 255) / 256)
    d.Faults.Ingest.sent;
  Alcotest.(check int) "chunk count balances"
    (d.Faults.Ingest.sent - d.Faults.Ingest.lost + d.Faults.Ingest.duped)
    (List.length d.Faults.Ingest.chunks);
  (* arrivals sorted, offsets chunk-aligned, payloads match the data *)
  let last = ref min_int in
  List.iter
    (fun (c : Faults.Ingest.chunk) ->
      Alcotest.(check bool) "sorted by arrival" true
        (c.Faults.Ingest.c_arrival_ps >= !last);
      last := c.Faults.Ingest.c_arrival_ps;
      Alcotest.(check int) "aligned offset" 0 (c.Faults.Ingest.c_offset mod 256);
      Alcotest.(check string) "payload is the slice"
        (String.sub ingest_payload c.Faults.Ingest.c_offset
           (String.length c.Faults.Ingest.c_bytes))
        c.Faults.Ingest.c_bytes)
    d.Faults.Ingest.chunks;
  (* a lossless schedule reassembles to the exact stream *)
  let clean = ingest_spec_exn "chunk=256" in
  let d0 = Faults.Ingest.schedule ~seed:42 clean ~start_ps:0 ingest_payload in
  Alcotest.(check int) "nothing lost" 0 d0.Faults.Ingest.lost;
  let buf = Bytes.make n '\000' in
  List.iter
    (fun (c : Faults.Ingest.chunk) ->
      Bytes.blit_string c.Faults.Ingest.c_bytes 0 buf c.Faults.Ingest.c_offset
        (String.length c.Faults.Ingest.c_bytes))
    d0.Faults.Ingest.chunks;
  Alcotest.(check string) "reassembles exactly" ingest_payload
    (Bytes.to_string buf)

let test_ingest_spec_validation () =
  List.iter
    (fun (s, fragment) ->
      match Faults.Ingest.parse_spec s with
      | Ok _ -> Alcotest.failf "spec %S accepted" s
      | Error msg ->
        if not (String.length msg > 0 && String.sub msg 0 (String.length fragment) = fragment)
        then Alcotest.failf "spec %S: message %S does not name %S" s msg fragment)
    [
      ("chunk=0", "chunk=0");
      ("chunk=-5", "chunk=-5");
      ("chunk=abc", "chunk=\"abc\"");
      ("loss=1.5", "loss=1.5");
      ("loss=nan", "loss=nan");
      ("gap_us=0", "gap_us=0");
      ("window=0", "window=0");
      ("stall_us=-1", "stall_us=-1");
    ];
  (* round trip of the canonical form *)
  let spec = ingest_spec_exn "chunk=128,loss=0.25,stall=0.5,stall_us=250" in
  let s = Faults.Ingest.spec_to_string spec in
  Alcotest.(check bool) "canonical form reparses" true
    (Faults.Ingest.parse_spec s = Ok spec)

let () =
  Alcotest.run "faults"
    [
      ( "crc",
        [
          qc crc_roundtrip_qcheck;
          qc crc_detects_bit_flip_qcheck;
          Alcotest.test_case "word drop detected" `Quick
            test_crc_detects_word_drop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
          Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
          Alcotest.test_case "bad rates rejected" `Quick
            test_engine_rejects_bad_rates;
          Alcotest.test_case "memory transient" `Quick test_memory_transient_fault;
          Alcotest.test_case "memory stuck cell" `Quick test_memory_stuck_cell;
          Alcotest.test_case "stall jitter" `Quick test_stall_jitter;
        ] );
      ( "hardened_rmi",
        [
          Alcotest.test_case "CRC/retry recovers a flip" `Quick
            test_crc_retry_recovers_flip;
          Alcotest.test_case "unprotected flip corrupts" `Quick
            test_unprotected_flip_corrupts;
          Alcotest.test_case "retry budget exhaustion" `Quick
            test_retry_budget_exhaustion;
          Alcotest.test_case "protected payload transfer" `Quick
            test_payload_transfer_protected;
        ] );
      ( "robust_decode",
        [
          Alcotest.test_case "1000 corrupted streams never raise" `Slow
            test_fuzz_decode_robust_total;
          Alcotest.test_case "clean stream undamaged" `Quick
            test_decode_robust_clean_stream;
          Alcotest.test_case "typed parse errors" `Quick
            test_parse_result_typed_errors;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "schedule deterministic" `Quick
            test_ingest_schedule_deterministic;
          Alcotest.test_case "schedule bounds" `Quick test_ingest_schedule_bounds;
          Alcotest.test_case "spec validation" `Quick test_ingest_spec_validation;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "campaign deterministic" `Slow
            test_campaign_deterministic;
          Alcotest.test_case "concealment visible" `Slow
            test_campaign_concealment_visible;
        ] );
    ]
