(* Soundness and profitability tests for the interval + known-bits
   abstract interpreter (Analysis.Interval / Analysis.Absint) and the
   synthesis optimisations it licenses.

   Two layers of qcheck properties share one generator each:
   - operator level: random abstract values around random concrete
     points, asserting every transfer function over-approximates
     Interp's exact integer semantics;
   - program level: random well-typed HIR modules with in-range
     stimuli, asserting (a) concrete execution stays inside the
     computed port ranges and (b) Absint.optimise / Absint.prune_fsm
     preserve the observable trace exactly. *)

open Fossy.Hir
module I = Analysis.Interval

let qc = QCheck_alcotest.to_alcotest

(* -- operator-level soundness ---------------------------------------- *)

(* Interp's exact semantics, replicated so the oracle is independent
   of the abstract domain under test. *)
let concrete_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0

let concrete_unop op a = match op with Neg -> -a | Bnot -> lnot a

let all_binops =
  [ Add; Sub; Mul; Shl; Shr; Band; Bor; Bxor; Eq; Ne; Lt; Le; Gt; Ge ]

(* A concrete point plus an abstract value guaranteed (by join
   soundness) to contain it. Mixing magnitudes exercises both the
   precise corner arithmetic and the overflow-widening paths. *)
let point_in_interval_gen =
  let open QCheck.Gen in
  let any_int =
    oneof
      [
        int_range (-1000) 1000;
        int_range (-1) 70;
        map (fun i -> i * 2_000_000_000) (int_range (-2_000_000) 2_000_000);
        oneofl [ min_int; max_int; 0; -1; 1; max_int - 1; min_int + 1 ];
      ]
  in
  let* p = any_int in
  let* spread = any_int in
  return (p, I.join (I.of_const p) (I.of_const spread))

let binop_soundness =
  QCheck.Test.make ~name:"Interval.binop contains the concrete result"
    ~count:1000
    QCheck.(
      make
        Gen.(
          triple (oneofl all_binops) point_in_interval_gen point_in_interval_gen))
    (fun (op, (a, ia), (b, ib)) ->
      (* lsl past 62 bits is unspecified in OCaml; Interp never
         produces it from validated programs, and the domain returns
         an abstraction of everything there anyway, so keep the
         oracle inside defined behaviour. *)
      QCheck.assume
        (match op with Shl -> b land 63 <= 62 && abs a < 0x4000_0000 | _ -> true);
      I.contains (I.binop op ia ib) (concrete_binop op a b))

let unop_soundness =
  QCheck.Test.make ~name:"Interval.unop contains the concrete result"
    ~count:400
    QCheck.(make Gen.(pair (oneofl [ Neg; Bnot ]) point_in_interval_gen))
    (fun (op, (a, ia)) -> I.contains (I.unop op ia) (concrete_unop op a))

let wrap_soundness =
  QCheck.Test.make ~name:"Interval.wrap_ty contains Interp.wrap" ~count:1000
    QCheck.(
      make Gen.(triple (1 -- 64) bool point_in_interval_gen))
    (fun (width, signed, (a, ia)) ->
      let ty = { width; signed } in
      I.contains (I.wrap_ty ty ia) (Fossy.Interp.wrap ty a))

let assume_soundness =
  QCheck.Test.make
    ~name:"Interval.assume_cmp keeps every point satisfying the comparison"
    ~count:600
    QCheck.(
      make
        Gen.(
          triple
            (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
            point_in_interval_gen point_in_interval_gen))
    (fun (op, (a, ia), (b, ib)) ->
      if concrete_binop op a b = 0 then true
      else
        match I.assume_cmp op ia ib with
        | None -> false (* satisfiable assumption proved empty: unsound *)
        | Some (ia', ib') -> I.contains ia' a && I.contains ib' b)

let meet_soundness =
  QCheck.Test.make ~name:"Interval.meet keeps common points" ~count:400
    QCheck.(make Gen.(pair point_in_interval_gen point_in_interval_gen))
    (fun ((a, ia), (_, ib)) ->
      if not (I.contains ib a) then true
      else match I.meet ia ib with None -> false | Some m -> I.contains m a)

let widen_soundness =
  QCheck.Test.make ~name:"Interval.widen bounds both arguments" ~count:400
    QCheck.(make Gen.(pair point_in_interval_gen point_in_interval_gen))
    (fun ((a, ia), (b, ib)) ->
      let w = I.widen ia ib in
      I.contains w a && I.contains w b)

(* -- shared random-module generator ---------------------------------- *)

(* Statement pool over two variables (one optionally unsigned), a
   power-of-two array with masked indices, one function and mixed
   widths — every module validates by construction and every array
   access is in range, so Interp never faults and the properties can
   demand exact trace equality. *)
let typed_module_gen =
  let open QCheck.Gen in
  let* win = oneofl [ 4; 8; 12 ] in
  let* wx = oneofl [ 6; 10; 16 ] in
  let* y_unsigned = bool in
  let ty_y = if y_unsigned then uint_ty 9 else int_ty 9 in
  let stmt_of_code code =
    match code mod 12 with
    | 0 -> [ assign "x" (v "x" +: v "din") ]
    | 1 -> [ assign "y" (Call ("triple", [ v "x" ])) ]
    | 2 -> [ assign_arr "mem" (Bin (Band, v "x", c 7)) (v "y") ]
    | 3 -> [ assign "y" (Arr ("mem", Bin (Band, v "din", c 7))) ]
    | 4 -> [ Wait ]
    | 5 ->
      [
        If
          ( Bin (Gt, v "x", c 0),
            [ assign "out" (v "x" -: v "y"); Wait ],
            [ assign "out" (v "y") ] );
      ]
    | 6 -> [ For ("k", 0, 2, [ assign "x" (v "x" +: c 1) ]) ]
    | 7 -> [ assign "out" (Bin (Bxor, v "x", v "y")) ]
    | 8 -> [ If (v "y" <: c 5, [ assign "y" (v "y" *: c 2) ], []) ]
    | 9 -> [ assign "x" (v "x" >>: 2) ]
    | 10 -> [ assign "out" (Bin (Bor, v "x", c 1)) ]
    | _ -> [ assign "x" (Bin (Sub, c 3, v "x")) ]
  in
  let* codes = list_size (1 -- 12) (0 -- 11) in
  let body = List.concat_map stmt_of_code codes @ [ assign "out" (v "x"); Wait ] in
  let m =
    {
      m_name = "rand";
      m_ports = [ ("din", Pin, int_ty win); ("out", Pout, int_ty 20) ];
      m_vars = [ ("x", int_ty wx); ("y", ty_y) ];
      m_arrays = [ ("mem", int_ty 9, 8) ];
      m_subprograms =
        [
          {
            s_name = "triple";
            s_params = [ ("a", int_ty wx) ];
            s_ret = Some (int_ty 9);
            s_locals = [ ("t", int_ty (wx + 2)) ];
            s_body = [ assign "t" (v "a" *: c 3); Return (Some (v "t" >>: 1)) ];
          };
        ];
      m_body = body;
    }
  in
  (* In-range stimulus: the analysis models input reads as values of
     the declared port type, so the harness must honour it. *)
  let lim = 1 lsl (win - 1) in
  let* stim = list_size (return 10) (int_range (-lim) (lim - 1)) in
  return (m, [ ("din", stim) ])

let assume_valid m =
  match validate m with Ok () -> () | Error _ -> QCheck.assume_fail ()

(* (a) concrete execution stays inside the computed abstractions *)
let analysis_soundness =
  QCheck.Test.make
    ~name:"Absint port ranges contain every concretely emitted value"
    ~count:600
    (QCheck.make typed_module_gen)
    (fun (m, stim) ->
      assume_valid m;
      let r = Analysis.Absint.analyse m in
      let trace = Fossy.Interp.run_hir m stim in
      List.for_all
        (fun (port, values) ->
          values = []
          ||
          match List.assoc_opt port r.Analysis.Absint.port_ranges with
          | None -> false (* emitted on a port the analysis missed *)
          | Some iv -> List.for_all (I.contains iv) values)
        trace)

(* (b) the optimiser preserves the observable trace, under both the
   behavioural interpreter and the extracted FSM *)
let optimise_equivalence =
  QCheck.Test.make
    ~name:"Absint.optimise and prune_fsm preserve the trace exactly"
    ~count:300
    (QCheck.make typed_module_gen)
    (fun (m, stim) ->
      assume_valid m;
      let inlined = Fossy.Inline.run m in
      let opt = Analysis.Absint.optimise inlined in
      let reference = Fossy.Interp.run_hir inlined stim in
      let hir_ok = Fossy.Interp.run_hir opt stim = reference in
      let fsm_ok =
        Fossy.Interp.run_fsm
          (Analysis.Absint.prune_fsm (Fossy.Fsm.of_module opt))
          stim
        = reference
      in
      hir_ok && fsm_ok)

(* -- fixed regressions: widening ------------------------------------- *)

let loop_module body vars =
  {
    m_name = "fix";
    m_ports = [ ("din", Pin, int_ty 8); ("out", Pout, int_ty 20) ];
    m_vars = vars;
    m_arrays = [];
    m_subprograms = [];
    m_body = body @ [ Wait ];
  }

let test_for_widening_sound () =
  (* Accumulation over a For loop: widening must terminate AND the
     final range must still contain the exact result (10). *)
  let m =
    loop_module
      [
        assign "x" (c 0);
        For ("i", 0, 9, [ assign "x" (v "x" +: c 1) ]);
        assign "out" (v "x");
      ]
      [ ("x", int_ty 16) ]
  in
  let r = Analysis.Absint.analyse m in
  let x = List.assoc "x" r.Analysis.Absint.var_ranges in
  Alcotest.(check bool) "10 in range" true (I.contains x 10);
  let out = List.assoc "out" r.Analysis.Absint.port_ranges in
  Alcotest.(check bool) "10 emitted" true (I.contains out 10)

let test_for_bound_narrowing () =
  (* y := 3*i for i in 0..9 gives raw range [0, 27]: the optimiser
     must narrow the 20-bit declaration to 6 signed bits. *)
  let m =
    loop_module
      [ For ("i", 0, 9, [ assign "y" (v "i" *: c 3); assign "out" (v "y") ]) ]
      [ ("y", int_ty 20) ]
  in
  let opt = Analysis.Absint.optimise m in
  Alcotest.(check int) "narrowed width" 6
    (match List.assoc_opt "y" opt.m_vars with
    | Some ty -> ty.width
    | None -> -1);
  let stim = [ ("din", [ 0 ]) ] in
  Alcotest.(check bool) "trace preserved" true
    (Fossy.Interp.run_hir opt stim = Fossy.Interp.run_hir m stim)

(* -- fixed regressions: signed/unsigned corner widths ----------------- *)

let test_corner_widths () =
  Alcotest.(check bool) "uint1 range" true
    (I.equal (I.of_ty (uint_ty 1)) (I.of_bounds 0 1));
  (* widths >= 62 are stored unwrapped: of_ty is top, wrap_ty is id *)
  Alcotest.(check bool) "width 62 is top" true (I.equal (I.of_ty (int_ty 62)) I.top);
  Alcotest.(check bool) "width 64 is top" true (I.equal (I.of_ty (int_ty 64)) I.top);
  let v61 = I.of_const ((1 lsl 60) - 5) in
  Alcotest.(check bool) "wrap_ty 62 identity" true
    (I.equal (I.wrap_ty (int_ty 62) v61) v61);
  (* storing -1 in a uint8 must wrap to exactly 255 *)
  Alcotest.(check (option int)) "uint8 := -1" (Some 255)
    (I.is_singleton (I.wrap_ty (uint_ty 8) (I.of_const (-1))));
  Alcotest.(check (option int)) "int8 := 128" (Some (-128))
    (I.is_singleton (I.wrap_ty (int_ty 8) (I.of_const 128)));
  (* signed width 61 wraps a just-too-big constant into range *)
  let m = 1 lsl 60 in
  Alcotest.(check (option int)) "int61 := 2^60" (Some (-m))
    (I.is_singleton (I.wrap_ty (int_ty 61) (I.of_const m)));
  Alcotest.(check int) "min_width of [0,27] signed" 6
    (I.min_width ~signed:true (I.of_bounds 0 27));
  Alcotest.(check int) "min_width of [-1,0] signed" 1
    (I.min_width ~signed:true (I.of_bounds (-1) 0));
  Alcotest.(check int) "min_width of [0,1] unsigned" 1
    (I.min_width ~signed:false (I.of_bounds 0 1))

(* -- fixed regressions: diagnostics ---------------------------------- *)

let has_code code ds =
  List.exists (fun d -> d.Analysis.Diagnostic.code = code) ds

let test_w018_proved_truncation () =
  (* din in [-8,7], so x := din + 100 lies in [92,107]: disjoint from
     int4's storable range — truncation proved on every execution. *)
  let m =
    {
      m_name = "w018";
      m_ports = [ ("din", Pin, int_ty 4); ("out", Pout, int_ty 20) ];
      m_vars = [ ("x", int_ty 4) ];
      m_arrays = [];
      m_subprograms = [];
      m_body = [ assign "x" (v "din" +: c 100); assign "out" (v "x"); Wait ];
    }
  in
  Alcotest.(check bool) "W018 fires" true
    (has_code "W018" (Analysis.Absint.lint m));
  (* narrowing must leave the truncating store alone: behaviour holds *)
  let opt = Analysis.Absint.optimise m in
  let stim = [ ("din", [ -8; 0; 7 ]) ] in
  Alcotest.(check bool) "still equivalent" true
    (Fossy.Interp.run_hir opt stim = Fossy.Interp.run_hir m stim)

let test_w019_proved_branch () =
  let m =
    {
      m_name = "w019";
      m_ports = [ ("din", Pin, int_ty 4); ("out", Pout, int_ty 20) ];
      m_vars = [];
      m_arrays = [];
      m_subprograms = [];
      m_body =
        [
          If
            ( v "din" <: c 100 (* always true: din <= 7 *),
              [ assign "out" (v "din") ],
              [ assign "out" (c 0) ] );
          Wait;
        ];
    }
  in
  Alcotest.(check bool) "W019 fires" true
    (has_code "W019" (Analysis.Absint.lint m));
  (* syntactic constant conditions are idioms, not findings *)
  let const_cond =
    { m with m_body = [ If (c 1, [ assign "out" (c 1) ], []); Wait ] }
  in
  Alcotest.(check bool) "Const cond exempt" false
    (has_code "W019" (Analysis.Absint.lint const_cond))

let test_e020_w021_array_bounds () =
  let mk index =
    {
      m_name = "arr";
      m_ports = [ ("din", Pin, int_ty 4); ("out", Pout, int_ty 20) ];
      m_vars = [];
      m_arrays = [ ("mem", int_ty 9, 4) ];
      m_subprograms = [];
      m_body = [ assign "out" (Arr ("mem", index)); Wait ];
    }
  in
  (* (din land 3) lor 4 lies in [4,7]: every execution faults *)
  let always = mk (Bin (Bor, Bin (Band, v "din", c 3), c 4)) in
  Alcotest.(check bool) "E020 fires" true
    (has_code "E020" (Analysis.Absint.lint always));
  (* din land 7 lies in [0,7]: may fault on a 4-element array *)
  let maybe = mk (Bin (Band, v "din", c 7)) in
  let ds = Analysis.Absint.lint maybe in
  Alcotest.(check bool) "W021 fires" true (has_code "W021" ds);
  Alcotest.(check bool) "not E020" false (has_code "E020" ds);
  (* din land 3 is proved in range: silence *)
  let fine = Analysis.Absint.lint (mk (Bin (Band, v "din", c 3))) in
  Alcotest.(check bool) "in-range silent" false
    (has_code "W021" fine || has_code "E020" fine)

let test_w022_and_prune () =
  (* x stays in [-8,7], so the Gt-100 arm (which holds a Wait and
     therefore its own FSM state) is reachable syntactically but not
     under value constraints. *)
  let m =
    {
      m_name = "w022";
      m_ports = [ ("din", Pin, int_ty 4); ("out", Pout, int_ty 20) ];
      m_vars = [ ("x", int_ty 4) ];
      m_arrays = [];
      m_subprograms = [];
      m_body =
        [
          assign "x" (v "din");
          If
            ( Bin (Gt, v "x", c 100),
              [ assign "out" (c 1); Wait; assign "out" (c 2) ],
              [ assign "out" (v "x") ] );
          Wait;
        ];
    }
  in
  let fsm = Fossy.Fsm.of_module (Fossy.Inline.run m) in
  Alcotest.(check bool) "W022 fires" true
    (has_code "W022" (Analysis.Absint.lint_fsm fsm));
  let pruned = Analysis.Absint.prune_fsm fsm in
  Alcotest.(check bool) "states dropped" true
    (Fossy.Fsm.state_count pruned < Fossy.Fsm.state_count fsm);
  let stim = [ ("din", [ 3; -5; 7 ]) ] in
  Alcotest.(check bool) "trace preserved" true
    (Fossy.Interp.run_fsm pruned stim = Fossy.Interp.run_fsm fsm stim)

(* -- diagnostic stability -------------------------------------------- *)

let test_lint_stable_and_deduped () =
  let ds = Analysis.Lint.lint_module Models.Idwt_cores.idwt97_systemc in
  let resorted = List.sort_uniq Analysis.Diagnostic.compare ds in
  Alcotest.(check bool) "sorted and deduplicated (idempotent)" true
    (ds = resorted);
  let rendered = List.map Analysis.Diagnostic.render ds in
  let again =
    List.map Analysis.Diagnostic.render
      (Analysis.Lint.lint_module Models.Idwt_cores.idwt97_systemc)
  in
  Alcotest.(check (list string)) "byte-stable across runs" rendered again

(* -- the decoder cores ----------------------------------------------- *)

let core_stimulus =
  [
    ("start", [ 1 ]);
    ("data_in", List.init 96 (fun i -> ((i * 37) mod 211) - 105));
  ]

let test_cores_optimised_area_and_trace () =
  Analysis.Lint.install ();
  List.iter
    (fun (name, core) ->
      match Fossy.Synthesis.synthesise core with
      | Error es -> Alcotest.failf "%s: %s" name (String.concat "; " es)
      | Ok r ->
        let a = r.Fossy.Synthesis.area and u = r.Fossy.Synthesis.unopt_area in
        (* the headline acceptance bar: a strict win on FF or LUT *)
        Alcotest.(check bool)
          (name ^ ": optimiser strictly shrinks FF or LUT")
          true
          (a.Rtl.Area.flip_flops < u.Rtl.Area.flip_flops
          || a.Rtl.Area.luts < u.Rtl.Area.luts);
        Alcotest.(check bool)
          (name ^ ": never larger")
          true
          (a.Rtl.Area.flip_flops <= u.Rtl.Area.flip_flops
          && a.Rtl.Area.luts <= u.Rtl.Area.luts);
        (* bit-identical refinement: behavioural = optimised = FSM *)
        let reference =
          Fossy.Interp.run_hir ~max_outputs:64 core core_stimulus
        in
        let opt = Fossy.Synthesis.optimise (Fossy.Inline.run core) in
        Alcotest.(check bool)
          (name ^ ": optimised HIR trace identical")
          true
          (Fossy.Interp.run_hir ~max_outputs:64 opt core_stimulus = reference);
        Alcotest.(check bool)
          (name ^ ": synthesised FSM trace identical")
          true
          (Fossy.Interp.run_fsm ~max_outputs:64 r.Fossy.Synthesis.fsm
             core_stimulus
          = reference))
    [
      ("idwt53", Models.Idwt_cores.idwt53_systemc);
      ("idwt97", Models.Idwt_cores.idwt97_systemc);
    ]

let test_cores_testbench_identical () =
  (* The generated self-checking testbench embeds the reference
     output stream; optimisation must not disturb one character. *)
  Analysis.Lint.install ();
  List.iter
    (fun (name, core) ->
      let tb m =
        match
          Fossy.Testbench.generate_for_module m ~stimulus:core_stimulus
            ~max_outputs:64 ()
        with
        | Ok t -> t
        | Error es -> Alcotest.failf "%s tb: %s" name (String.concat "; " es)
      in
      let opt = Fossy.Synthesis.optimise (Fossy.Inline.run core) in
      Alcotest.(check bool)
        (name ^ ": testbench text identical")
        true
        (tb core = tb opt))
    [
      ("idwt53", Models.Idwt_cores.idwt53_systemc);
      ("idwt97", Models.Idwt_cores.idwt97_systemc);
    ]

let () =
  Alcotest.run "absint"
    [
      ( "interval",
        [
          qc binop_soundness;
          qc unop_soundness;
          qc wrap_soundness;
          qc assume_soundness;
          qc meet_soundness;
          qc widen_soundness;
          Alcotest.test_case "corner widths" `Quick test_corner_widths;
        ] );
      ( "absint",
        [
          qc analysis_soundness;
          Alcotest.test_case "For widening sound" `Quick test_for_widening_sound;
        ] );
      ( "optimise",
        [
          qc optimise_equivalence;
          Alcotest.test_case "For-bound narrowing" `Quick test_for_bound_narrowing;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "W018 proved truncation" `Quick
            test_w018_proved_truncation;
          Alcotest.test_case "W019 proved branch" `Quick test_w019_proved_branch;
          Alcotest.test_case "E020/W021 array bounds" `Quick
            test_e020_w021_array_bounds;
          Alcotest.test_case "W022 + prune_fsm" `Quick test_w022_and_prune;
          Alcotest.test_case "stable output" `Quick test_lint_stable_and_deduped;
        ] );
      ( "cores",
        [
          Alcotest.test_case "area win + trace equality" `Quick
            test_cores_optimised_area_and_trace;
          Alcotest.test_case "testbench identical" `Quick
            test_cores_testbench_identical;
        ] );
    ]
