(* Tests for the sharded decode fleet: the consistent-hash ring's
   remapping guarantees, the shared L2 tier's transfer accounting and
   invalidation honesty, and the fleet's determinism, admission
   policies and autoscaler. *)

let qc = QCheck_alcotest.to_alcotest

(* -- ring ------------------------------------------------------------- *)

let digests ~seed n =
  Array.init n (fun i ->
      Faults.Rng.hash64 (Int64.of_int (seed + 1)) (Int64.of_int (i + 1)))

let test_ring_empty_and_validation () =
  let empty = Fleet.Ring.create [] in
  Alcotest.(check bool) "empty" true (Fleet.Ring.is_empty empty);
  Alcotest.(check (option int)) "owns nothing" None
    (Fleet.Ring.owner empty 42L);
  Alcotest.(check (list int)) "no successors" []
    (Fleet.Ring.successors empty 42L);
  Alcotest.check_raises "vnodes < 1"
    (Invalid_argument "Fleet.Ring.create: vnodes < 1") (fun () ->
      ignore (Fleet.Ring.create ~vnodes:0 [ 1 ]))

let test_ring_members_dedup () =
  let ring = Fleet.Ring.create [ 3; 1; 3; 2; 1 ] in
  Alcotest.(check (list int)) "sorted distinct" [ 1; 2; 3 ]
    (Fleet.Ring.members ring);
  Alcotest.(check (list int)) "re-adding a member is a no-op" [ 1; 2; 3 ]
    (Fleet.Ring.members (Fleet.Ring.add ring 2));
  Alcotest.(check (list int)) "removing a non-member is a no-op" [ 1; 2; 3 ]
    (Fleet.Ring.members (Fleet.Ring.remove ring 9))

let test_ring_owner_and_successors () =
  let ring = Fleet.Ring.create [ 0; 1; 2; 3 ] in
  Array.iter
    (fun d ->
      let owner =
        match Fleet.Ring.owner ring d with
        | Some r -> r
        | None -> Alcotest.fail "non-empty ring owns every key"
      in
      let succ = Fleet.Ring.successors ring d in
      Alcotest.(check int) "owner heads the successor list" owner
        (List.hd succ);
      Alcotest.(check (list int)) "successors permute the members"
        [ 0; 1; 2; 3 ]
        (List.sort compare succ))
    (digests ~seed:7 64)

(* The two directions of the consistent-hashing contract: membership
   churn must remap exactly the departed member's keys (and nothing
   else), and each remapped key must move to the ring-order
   successor / the new member. *)
let prop_ring_remove_remaps_only_removed =
  QCheck.Test.make ~name:"remove remaps only the removed member's keys"
    ~count:40
    QCheck.(triple (int_range 2 10) small_int small_int)
    (fun (n, victim_seed, key_seed) ->
      let members = List.init n Fun.id in
      let victim = victim_seed mod n in
      let ring = Fleet.Ring.create members in
      let shrunk = Fleet.Ring.remove ring victim in
      Array.for_all
        (fun d ->
          let before = Fleet.Ring.owner ring d
          and after = Fleet.Ring.owner shrunk d in
          match (before, after) with
          | Some b, Some a when b <> victim -> a = b
          | Some _, Some a ->
            (* the key must move to the old ring's next distinct
               member, skipping the victim *)
            let next =
              List.find (fun r -> r <> victim) (Fleet.Ring.successors ring d)
            in
            a = next
          | _ -> false)
        (digests ~seed:key_seed 200))

let prop_ring_add_remaps_only_to_new =
  QCheck.Test.make ~name:"add remaps keys only onto the new member"
    ~count:40
    QCheck.(pair (int_range 1 10) small_int)
    (fun (n, key_seed) ->
      let ring = Fleet.Ring.create (List.init n Fun.id) in
      let grown = Fleet.Ring.add ring n in
      Array.for_all
        (fun d ->
          let before = Fleet.Ring.owner ring d
          and after = Fleet.Ring.owner grown d in
          match (before, after) with
          | Some b, Some a -> a = b || a = n
          | _ -> false)
        (digests ~seed:key_seed 200))

let test_ring_remap_fraction () =
  (* Removing one of 16 members must remap about 1/16 of the
     keyspace; the hashes are fixed, so this is a deterministic
     measurement with loose bounds. *)
  let keys = digests ~seed:2008 10_000 in
  let ring = Fleet.Ring.create (List.init 16 Fun.id) in
  let shrunk = Fleet.Ring.remove ring 5 in
  let remapped =
    Array.fold_left
      (fun acc d ->
        if Fleet.Ring.owner ring d <> Fleet.Ring.owner shrunk d then acc + 1
        else acc)
      0 keys
  in
  let fraction = float_of_int remapped /. float_of_int (Array.length keys) in
  Alcotest.(check bool)
    (Printf.sprintf "remapped fraction %.4f within [0.02, 0.15]" fraction)
    true
    (fraction >= 0.02 && fraction <= 0.15)

(* -- shared L2 tier ---------------------------------------------------- *)

let corpus () =
  Array.init 2 (fun i ->
      Models.Workload.codestream ~width:64 ~height:64 ~seed:(2008 + i)
        Jpeg2000.Codestream.Lossless)

(* A real decoded tile for cache payloads (the tier stores whatever
   tiles the decode produces; the tests only care about identity). *)
let some_tile data =
  let stream = Jpeg2000.Codestream.parse data in
  let header = stream.Jpeg2000.Codestream.header in
  let seg = List.hd stream.Jpeg2000.Codestream.tiles in
  let st = Jpeg2000.Decoder.stage_tile ~discard:0 header seg in
  let results =
    Array.init (Jpeg2000.Decoder.staged_jobs st) (Jpeg2000.Decoder.staged_job st)
  in
  fst (Jpeg2000.Decoder.finish_staged st results)

let key ~digest ~tile =
  { Serve.Cache.digest; length = 1000; tile; discard = 0 }

let test_tier_validation () =
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Fleet.Tier.create: capacity < 1") (fun () ->
      ignore (Fleet.Tier.create ~capacity:0 ~transfer_ps:0 ()));
  Alcotest.check_raises "transfer_ps < 0"
    (Invalid_argument "Fleet.Tier.create: transfer_ps < 0") (fun () ->
      ignore (Fleet.Tier.create ~capacity:4 ~transfer_ps:(-1) ()))

let test_tier_transfer_accounting () =
  let tile = some_tile (corpus ()).(0) in
  let t = Fleet.Tier.create ~capacity:4 ~transfer_ps:1_000 () in
  let k = key ~digest:17L ~tile:0 in
  Alcotest.(check bool) "miss" true (Fleet.Tier.find t k = None);
  Alcotest.(check int) "a miss is not a transfer" 0 (Fleet.Tier.transfers t);
  Fleet.Tier.add t k tile;
  Alcotest.(check bool) "hit" true (Fleet.Tier.find t k <> None);
  Alcotest.(check int) "one transfer" 1 (Fleet.Tier.transfers t);
  Alcotest.(check int) "priced per fetch" 1_000 (Fleet.Tier.transferred_ps t);
  let s = Fleet.Tier.stats t in
  Alcotest.(check int) "hits" 1 s.Serve.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Serve.Lru.misses

let test_tier_invalidation_never_stale () =
  (* Force every key into one bucket: invalidation must still drop
     exactly the named stream's tiles and keep serving the rest. *)
  let tile = some_tile (corpus ()).(0) in
  let t = Fleet.Tier.create ~hash:(fun _ -> 0) ~capacity:32 ~transfer_ps:0 () in
  let ks_a = List.init 4 (fun i -> key ~digest:5L ~tile:i)
  and ks_b = List.init 4 (fun i -> key ~digest:6L ~tile:i) in
  List.iter (fun k -> Fleet.Tier.add t k tile) (ks_a @ ks_b);
  let dropped = Fleet.Tier.invalidate_stream t ~digest:5L ~length:1000 in
  Alcotest.(check int) "dropped all of stream A" 4 dropped;
  Alcotest.(check int) "counted" 4 (Fleet.Tier.invalidations t);
  List.iter
    (fun k ->
      Alcotest.(check bool) "stream A gone" true (Fleet.Tier.find t k = None))
    ks_a;
  List.iter
    (fun k ->
      Alcotest.(check bool) "stream B intact" true (Fleet.Tier.find t k <> None))
    ks_b;
  (* A matching digest with a different length names a different
     stream: it must survive. *)
  let k_len = { (key ~digest:5L ~tile:9) with Serve.Cache.length = 999 } in
  Fleet.Tier.add t k_len tile;
  ignore (Fleet.Tier.invalidate_stream t ~digest:5L ~length:1000);
  Alcotest.(check bool) "same digest, other length survives" true
    (Fleet.Tier.find t k_len <> None)

let prop_tier_invalidate_collisions =
  QCheck.Test.make
    ~name:"invalidation never serves a stale tile (colliding hashes)"
    ~count:30
    QCheck.(triple (int_range 1 4) (int_range 1 12) small_int)
    (fun (streams, tiles, pick_seed) ->
      let tile = some_tile (corpus ()).(0) in
      let t =
        Fleet.Tier.create ~hash:(fun _ -> 0) ~capacity:128 ~transfer_ps:0 ()
      in
      let keys_of s = List.init tiles (fun i -> key ~digest:(Int64.of_int (s + 1)) ~tile:i) in
      for s = 0 to streams - 1 do
        List.iter (fun k -> Fleet.Tier.add t k tile) (keys_of s)
      done;
      let victim = pick_seed mod streams in
      let dropped =
        Fleet.Tier.invalidate_stream t
          ~digest:(Int64.of_int (victim + 1))
          ~length:1000
      in
      dropped = tiles
      && List.for_all (fun k -> Fleet.Tier.find t k = None) (keys_of victim)
      && List.for_all
           (fun s ->
             s = victim
             || List.for_all (fun k -> Fleet.Tier.find t k <> None) (keys_of s))
           (List.init streams Fun.id))

(* -- fleet ------------------------------------------------------------- *)

let spec_exn s =
  match Serve.Request.parse_spec s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "bad spec %S: %s" s e

let report_string r = Telemetry.Json.to_string (Fleet.report_to_json r)

let small_l1 capacity =
  { Serve.Service.default_config with Serve.Service.cache_capacity = capacity }

let test_fleet_rerun_and_jobs_invariant () =
  (* Autoscaling, spill and the shared L2 all active: the report must
     still be byte-identical across reruns and across worker
     counts. *)
  let config =
    {
      Fleet.default_config with
      Fleet.replicas = 2;
      min_replicas = 1;
      max_replicas = 4;
      l2_capacity = 32;
      interval_ps = 2_000_000_000;
      warmup_ps = 5_000_000_000;
    }
  in
  let run_with jobs =
    let fleet = Fleet.create ~config ~service:(small_l1 4) (corpus ()) in
    Par.Pool.with_jobs jobs (fun pool ->
        report_string
          (Fleet.run ~pool fleet (spec_exn "open:n=32,rate=2500,seed=5,deadline=15")))
  in
  let a = run_with 1 in
  Alcotest.(check string) "rerun" a (run_with 1);
  Alcotest.(check string) "jobs=2" a (run_with 2);
  Alcotest.(check string) "jobs=4" a (run_with 4)

let test_fleet_counters_balance () =
  let fleet =
    Fleet.create
      ~config:{ Fleet.default_config with Fleet.replicas = 3; min_replicas = 3; max_replicas = 3 }
      ~service:(small_l1 4) (corpus ())
  in
  let r = Fleet.run fleet (spec_exn "open:n=40,rate=1500,seed=3") in
  Alcotest.(check int) "total = served + rejected + dropped" r.Fleet.total
    (r.Fleet.served + r.Fleet.rejected + r.Fleet.dropped);
  Alcotest.(check int) "served = sum of replica serves" r.Fleet.served
    (List.fold_left (fun acc s -> acc + s.Fleet.rs_served) 0 r.Fleet.per_replica);
  Alcotest.(check int) "batches = sum of replica batches" r.Fleet.batches
    (List.fold_left (fun acc s -> acc + s.Fleet.rs_batches) 0 r.Fleet.per_replica)

let test_fleet_matches_reference_decoder () =
  (* Every image a replica serves must equal the reference decoder's
     output for the request's (possibly degraded) target — caching,
     spilling and the L2 transfer path change timing, never pixels. *)
  let streams = corpus () in
  let fleet =
    Fleet.create
      ~config:{ Fleet.default_config with Fleet.l2_capacity = 32 }
      ~service:(small_l1 4) streams
  in
  let checked = ref 0 in
  let report =
    Fleet.run
      ~on_complete:(fun _replica rq img ->
        let data = streams.(rq.Serve.Request.stream) in
        let reference =
          match rq.Serve.Request.target with
          | Serve.Request.Full -> Jpeg2000.Decoder.decode data
          | Serve.Request.Region { rx; ry; rw; rh } ->
            Jpeg2000.Decoder.decode_region ~x:rx ~y:ry ~w:rw ~h:rh data
          | Serve.Request.Reduced { discard } ->
            Jpeg2000.Decoder.decode_reduced ~discard_levels:discard data
        in
        incr checked;
        if not (Jpeg2000.Image.equal img reference) then
          Alcotest.failf "request %d diverges from the reference decoder"
            rq.Serve.Request.id)
      fleet
      (spec_exn "open:n=30,rate=600,seed=21")
  in
  Alcotest.(check int) "all served requests checked" report.Fleet.served !checked

let test_fleet_l2_shares_decodes () =
  (* A 2-tile L1 cannot hold a 64x64 stream's four tiles, so repeat
     requests thrash the L1 — with the shared tier enabled they must
     come back as L2 hits, and the combined hit ratio must beat the
     L1-only baseline. *)
  let combined (r : Fleet.report) =
    let lookups = r.Fleet.l1.Fleet.hits + r.Fleet.l1.Fleet.misses in
    let hits =
      r.Fleet.l1.Fleet.hits
      +
      match r.Fleet.l2 with
      | Some l -> l.Fleet.l2_tier.Fleet.hits
      | None -> 0
    in
    float_of_int hits /. float_of_int (max 1 lookups)
  in
  let run l2 =
    let config =
      { Fleet.default_config with Fleet.replicas = 2; min_replicas = 2; max_replicas = 2; l2_capacity = l2 }
    in
    Fleet.run
      (Fleet.create ~config ~service:(small_l1 2) (corpus ()))
      (spec_exn "open:n=24,rate=800,seed=5")
  in
  let bare = run 0 and warm = run 64 in
  Alcotest.(check bool) "tier disabled" true (bare.Fleet.l2 = None);
  (match warm.Fleet.l2 with
  | None -> Alcotest.fail "tier enabled but unreported"
  | Some l ->
    Alcotest.(check bool) "L2 hits" true (l.Fleet.l2_tier.Fleet.hits > 0);
    Alcotest.(check int) "every hit is a priced transfer"
      l.Fleet.l2_tier.Fleet.hits l.Fleet.l2_transfers);
  Alcotest.(check bool) "combined ratio beats L1-only" true
    (combined warm > combined bare)

let test_fleet_autoscales_under_overload () =
  let config =
    {
      Fleet.default_config with
      Fleet.replicas = 1;
      min_replicas = 1;
      max_replicas = 4;
      l2_capacity = 32;
      interval_ps = 2_000_000_000;
      warmup_ps = 5_000_000_000;
    }
  in
  let service =
    {
      Serve.Service.default_config with
      Serve.Service.cache_capacity = 4;
      queue_capacity = 8;
    }
  in
  let fleet = Fleet.create ~config ~service (corpus ()) in
  let r = Fleet.run fleet (spec_exn "open:n=64,rate=6000,seed=9,deadline=5") in
  Alcotest.(check bool) "scaled up" true (r.Fleet.scale_ups >= 1);
  Alcotest.(check bool) "peak grew" true (r.Fleet.peak_replicas > 1);
  Alcotest.(check int) "one event per decision"
    (r.Fleet.scale_ups + r.Fleet.scale_downs)
    (List.length r.Fleet.scale_events);
  Alcotest.(check bool) "bounded by max" true (r.Fleet.peak_replicas <= 4)

let test_fleet_spill_policy () =
  (* One stream, so every request hashes to one owner: with a 2-deep
     queue and near-simultaneous arrivals the owner saturates at
     once. Spill must shed onto the other replica; without it the
     front end can only refuse. *)
  let one_stream = Array.sub (corpus ()) 0 1 in
  let service =
    {
      Serve.Service.default_config with
      Serve.Service.queue_capacity = 2;
      overload = Serve.Service.Reject;
      cache_capacity = 4;
    }
  in
  let run spill =
    let config =
      { Fleet.default_config with Fleet.replicas = 2; min_replicas = 2; max_replicas = 2; spill }
    in
    Fleet.run
      (Fleet.create ~config ~service one_stream)
      (spec_exn "open:n=24,rate=100000,seed=3")
  in
  let with_spill = run true and without = run false in
  Alcotest.(check bool) "spill fires" true (with_spill.Fleet.spilled > 0);
  Alcotest.(check int) "no spill when disabled" 0 without.Fleet.spilled;
  Alcotest.(check bool) "disabled spill refuses instead" true
    (without.Fleet.rejected > with_spill.Fleet.rejected)

let test_fleet_config_errors () =
  let check_error spec want =
    match Fleet.parse_config spec with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" spec
    | Error e -> Alcotest.(check string) spec want e
  in
  check_error "replicas=0" "replicas=0 must be >= 1";
  check_error "replicas=2,min=5" "min=5 must be <= replicas=2";
  check_error "up=1.5" "up=1.5 must be in [0, 1]";
  check_error "up=0.2,down=0.4" "down=0.4 must be <= up=0.2";
  check_error "bogus=1" "unknown fleet key \"bogus\"";
  check_error "interval=0" "interval=0 must be > 0"

let test_fleet_config_roundtrip () =
  match Fleet.parse_config (Fleet.config_to_string Fleet.default_config) with
  | Error e -> Alcotest.failf "canonical form failed to parse: %s" e
  | Ok c ->
    Alcotest.(check bool) "round-trips to the same config" true
      (c = Fleet.default_config)

let test_fleet_rejects_bad_inputs () =
  let streams = corpus () in
  Alcotest.check_raises "ingest unsupported"
    (Invalid_argument "Fleet.create: ingest is not supported in fleet mode")
    (fun () ->
      let ingest =
        match Faults.Ingest.parse_spec "chunk=256" with
        | Ok i -> i
        | Error e -> Alcotest.failf "bad ingest spec: %s" e
      in
      ignore
        (Fleet.create
           ~service:
             { Serve.Service.default_config with Serve.Service.ingest = Some ingest }
           streams));
  Alcotest.check_raises "closed-loop spec"
    (Invalid_argument "Fleet.run: closed-loop spec (fleet workloads are open-loop)")
    (fun () ->
      ignore
        (Fleet.run (Fleet.create streams)
           (spec_exn "closed:n=8,clients=2,think=1,seed=1")))

let () =
  Alcotest.run "fleet"
    [
      ( "ring",
        [
          Alcotest.test_case "empty and validation" `Quick
            test_ring_empty_and_validation;
          Alcotest.test_case "members dedup" `Quick test_ring_members_dedup;
          Alcotest.test_case "owner and successors" `Quick
            test_ring_owner_and_successors;
          Alcotest.test_case "remap fraction ~1/n" `Quick
            test_ring_remap_fraction;
          qc prop_ring_remove_remaps_only_removed;
          qc prop_ring_add_remaps_only_to_new;
        ] );
      ( "tier",
        [
          Alcotest.test_case "validation" `Quick test_tier_validation;
          Alcotest.test_case "transfer accounting" `Quick
            test_tier_transfer_accounting;
          Alcotest.test_case "invalidation never stale" `Quick
            test_tier_invalidation_never_stale;
          qc prop_tier_invalidate_collisions;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "rerun and jobs invariant" `Quick
            test_fleet_rerun_and_jobs_invariant;
          Alcotest.test_case "counters balance" `Quick
            test_fleet_counters_balance;
          Alcotest.test_case "matches reference decoder" `Quick
            test_fleet_matches_reference_decoder;
          Alcotest.test_case "L2 shares decodes" `Quick
            test_fleet_l2_shares_decodes;
          Alcotest.test_case "autoscales under overload" `Quick
            test_fleet_autoscales_under_overload;
          Alcotest.test_case "spill policy" `Quick test_fleet_spill_policy;
          Alcotest.test_case "config errors" `Quick test_fleet_config_errors;
          Alcotest.test_case "config roundtrip" `Quick
            test_fleet_config_roundtrip;
          Alcotest.test_case "rejects bad inputs" `Quick
            test_fleet_rejects_bad_inputs;
        ] );
    ]
