(* Tests for the domain pool and for the bit-identity of every
   parallel decode path against its sequential twin. *)

(* -- Pool.map semantics -------------------------------------------- *)

let with_pools f =
  (* Every assertion runs at pool sizes 1 (sequential), 2 and 4. *)
  List.iter
    (fun jobs -> Par.Pool.with_jobs jobs (fun pool -> f ~jobs pool))
    [ 1; 2; 4 ]

let test_map_matches_array_map () =
  with_pools (fun ~jobs pool ->
      List.iter
        (fun n ->
          let arr = Array.init n (fun i -> i) in
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            (Array.map (fun x -> (x * x) + 1) arr)
            (Par.Pool.map pool arr (fun x -> (x * x) + 1)))
        [ 0; 1; 2; 3; 7; 64; 1000 ])

let test_map_preserves_order_under_load () =
  (* Uneven chunk workloads must not reorder results. *)
  with_pools (fun ~jobs pool ->
      let arr = Array.init 97 (fun i -> i) in
      let slow x =
        let acc = ref 0 in
        for i = 0 to (x mod 13) * 1000 do
          acc := !acc + i
        done;
        (x, !acc land 0xFF)
      in
      Alcotest.(check bool)
        (Printf.sprintf "order jobs=%d" jobs)
        true
        (Par.Pool.map pool arr slow = Array.map slow arr))

let test_explicit_chunk () =
  (* Any chunk size must give Array.map results; chunk < 1 is a
     caller error. *)
  with_pools (fun ~jobs pool ->
      List.iter
        (fun chunk ->
          let arr = Array.init 100 (fun i -> i) in
          Alcotest.(check (array int))
            (Printf.sprintf "chunk=%d jobs=%d" chunk jobs)
            (Array.map (fun x -> x * 3) arr)
            (Par.Pool.map ~chunk pool arr (fun x -> x * 3)))
        [ 1; 2; 7; 100; 1000 ]);
  Par.Pool.with_jobs 2 (fun pool ->
      match Par.Pool.map ~chunk:0 pool [| 1 |] Fun.id with
      | _ -> Alcotest.fail "chunk:0 accepted"
      | exception Invalid_argument _ -> ())

let test_map_telemetry () =
  (* The batch counters: chunks is a pure function of (n, chunk) —
     deterministic — while steals depends on the schedule and is only
     bounded. A sequential pool reports the sequential counter and no
     chunks. *)
  let counters f =
    let sink, () = Telemetry.Sink.with_sink f in
    let report = Telemetry.Sink.report sink in
    fun name -> Telemetry.Report.counter report ("par.map." ^ name)
  in
  let c =
    counters (fun () ->
        Par.Pool.with_jobs 2 (fun pool ->
            ignore (Par.Pool.map ~chunk:10 pool (Array.init 100 Fun.id) Fun.id)))
  in
  Alcotest.(check int) "calls" 1 (c "calls");
  Alcotest.(check int) "jobs" 100 (c "jobs");
  Alcotest.(check int) "chunks" 10 (c "chunks");
  Alcotest.(check int) "sequential" 0 (c "sequential");
  Alcotest.(check bool) "steals bounded" true
    (c "steals" >= 0 && c "steals" <= 10);
  let s =
    counters (fun () ->
        ignore (Par.Pool.map Par.Pool.sequential (Array.init 5 Fun.id) Fun.id))
  in
  Alcotest.(check int) "sequential calls" 1 (s "calls");
  Alcotest.(check int) "sequential jobs" 5 (s "jobs");
  Alcotest.(check int) "sequential marker" 1 (s "sequential");
  Alcotest.(check int) "sequential chunks" 0 (s "chunks")

exception Boom of int

let test_map_propagates_exception () =
  with_pools (fun ~jobs pool ->
      match Par.Pool.map pool (Array.init 50 Fun.id) (fun x ->
                if x = 37 then raise (Boom x) else x)
      with
      | _ -> Alcotest.failf "jobs=%d: exception swallowed" jobs
      | exception Boom 37 -> ())

let test_nested_map_degrades () =
  (* A map issued from inside a pool task must complete (sequentially)
     rather than deadlock on the busy workers. *)
  Par.Pool.with_jobs 2 (fun pool ->
      let outer =
        Par.Pool.map pool (Array.init 8 Fun.id) (fun i ->
            Array.fold_left ( + ) 0
              (Par.Pool.map pool (Array.init 10 Fun.id) (fun j -> i + j)))
      in
      Alcotest.(check (array int)) "nested results"
        (Array.init 8 (fun i -> (10 * i) + 45))
        outer)

let test_map_after_shutdown_raises () =
  let pool = Par.Pool.of_jobs 2 in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Par.Pool.map: pool is shut down") (fun () ->
      ignore (Par.Pool.map pool [| 1 |] Fun.id))

let test_parallelism () =
  Alcotest.(check int) "sequential" 1 (Par.Pool.parallelism Par.Pool.sequential);
  Alcotest.(check int) "of_jobs 1" 1 (Par.Pool.parallelism (Par.Pool.of_jobs 1));
  Par.Pool.with_jobs 4 (fun pool ->
      Alcotest.(check int) "of_jobs 4" 4 (Par.Pool.parallelism pool))

(* -- domain-local telemetry and fault state ------------------------- *)

let test_sink_isolation_across_domains () =
  (* Two domains each install their own sink: counters must not
     cross-talk, and the spawning domain's sink must see nothing. *)
  let main_sink, (counts_a, counts_b) =
    Telemetry.Sink.with_sink (fun () ->
        let worker tag n () =
          let sink, () =
            Telemetry.Sink.with_sink (fun () ->
                for _ = 1 to n do
                  Telemetry.Sink.incr tag
                done)
          in
          Telemetry.Metrics.counter (Telemetry.Sink.metrics sink) tag
        in
        let a = Domain.spawn (worker "ticks" 3) in
        let b = Domain.spawn (worker "ticks" 5) in
        (Domain.join a, Domain.join b))
  in
  Alcotest.(check int) "domain A count" 3 counts_a;
  Alcotest.(check int) "domain B count" 5 counts_b;
  Alcotest.(check int) "main sink untouched" 0
    (Telemetry.Metrics.counter (Telemetry.Sink.metrics main_sink) "ticks")

let test_fault_hooks_are_domain_local () =
  let hits = Atomic.make 0 in
  Osss.Fault_hooks.set_stall (fun ~proc:_ ->
      Atomic.incr hits;
      0);
  Fun.protect
    ~finally:(fun () -> Osss.Fault_hooks.clear ())
    (fun () ->
      let other =
        Domain.spawn (fun () ->
            Osss.Fault_hooks.stall () = None && not (Osss.Fault_hooks.active ()))
      in
      Alcotest.(check bool) "fresh domain sees no hook" true
        (Domain.join other);
      match Osss.Fault_hooks.stall () with
      | Some f ->
        ignore (f ~proc:"cpu0");
        Alcotest.(check int) "installing domain still hooked" 1
          (Atomic.get hits)
      | None -> Alcotest.fail "hook lost on installing domain")

(* -- decoder bit-identity ------------------------------------------- *)

let encoded_stream mode =
  let image =
    Jpeg2000.Image.smooth ~width:96 ~height:64 ~components:3 ~seed:77
  in
  Jpeg2000.Encoder.encode
    {
      Jpeg2000.Encoder.tile_w = 32;
      tile_h = 32;
      levels = 3;
      mode;
      base_step = 2.0;
      code_block = 16;
    }
    image

let test_decode_bit_identity () =
  List.iter
    (fun mode ->
      let data = encoded_stream mode in
      let reference = Jpeg2000.Decoder.decode data in
      with_pools (fun ~jobs pool ->
          Alcotest.(check bool)
            (Printf.sprintf "decode jobs=%d" jobs)
            true
            (Jpeg2000.Image.equal reference
               (Jpeg2000.Decoder.decode ~pool data))))
    [ Jpeg2000.Codestream.Lossless; Jpeg2000.Codestream.Lossy ]

(* Flip bits inside the entropy-coded pass bytes and plane counts only
   (the framing stays intact), then re-emit: a parseable stream whose
   payload damage exercises both block- and tile-level concealment. *)
let corrupt_stream ~seed ~rate data =
  let rng = Faults.Rng.create seed in
  let corrupt_pass s =
    let b = Bytes.of_string s in
    for i = 0 to Bytes.length b - 1 do
      if Faults.Rng.float rng < rate then
        Bytes.set b i
          (Char.chr
             (Char.code (Bytes.get b i) lxor (1 lsl Faults.Rng.int rng 8)))
    done;
    Bytes.to_string b
  in
  let corrupt_block (blk : Jpeg2000.Codestream.block_segment) =
    let blk_planes =
      if Faults.Rng.float rng < rate then
        blk.Jpeg2000.Codestream.blk_planes lxor (1 lsl (5 + Faults.Rng.int rng 3))
      else blk.Jpeg2000.Codestream.blk_planes
    in
    {
      Jpeg2000.Codestream.blk_planes;
      blk_passes = List.map corrupt_pass blk.Jpeg2000.Codestream.blk_passes;
    }
  in
  let corrupt_band (band : Jpeg2000.Codestream.band_segment) =
    {
      band with
      Jpeg2000.Codestream.seg_blocks =
        List.map corrupt_block band.Jpeg2000.Codestream.seg_blocks;
    }
  in
  let stream = Jpeg2000.Codestream.parse data in
  Jpeg2000.Codestream.emit
    {
      stream with
      Jpeg2000.Codestream.tiles =
        List.map
          (fun (seg : Jpeg2000.Codestream.tile_segment) ->
            {
              seg with
              Jpeg2000.Codestream.comps =
                Array.map (List.map corrupt_band) seg.Jpeg2000.Codestream.comps;
            })
          stream.Jpeg2000.Codestream.tiles;
    }

let test_decode_robust_bit_identity () =
  let data =
    corrupt_stream ~seed:42 ~rate:0.02
      (encoded_stream Jpeg2000.Codestream.Lossless)
  in
  match Jpeg2000.Decoder.decode_robust data with
  | Error _ -> Alcotest.fail "corrupted stream no longer parses"
  | Ok (ref_image, ref_report) ->
    Alcotest.(check bool) "damage actually concealed" true
      (ref_report.Jpeg2000.Decoder.concealed_blocks > 0
      || ref_report.Jpeg2000.Decoder.concealed_tiles > 0);
    with_pools (fun ~jobs pool ->
        match Jpeg2000.Decoder.decode_robust ~pool data with
        | Error _ -> Alcotest.failf "jobs=%d: parallel robust decode failed" jobs
        | Ok (image, report) ->
          Alcotest.(check bool)
            (Printf.sprintf "image jobs=%d" jobs)
            true
            (Jpeg2000.Image.equal ref_image image);
          Alcotest.(check bool)
            (Printf.sprintf "report jobs=%d" jobs)
            true (ref_report = report))

(* -- model sweep and campaign bit-identity -------------------------- *)

let outcome_fingerprint o = Telemetry.Json.to_string (Models.Outcome.to_json o)

let test_nine_versions_bit_identity () =
  let mode = Jpeg2000.Codestream.Lossless in
  let reference =
    List.map outcome_fingerprint
      (Models.Experiment.run_many ~payload:false Models.Experiment.all_versions
         mode)
  in
  with_pools (fun ~jobs pool ->
      let outcomes =
        Models.Experiment.run_many ~payload:false ~pool
          Models.Experiment.all_versions mode
      in
      Alcotest.(check (list string))
        (Printf.sprintf "outcomes jobs=%d" jobs)
        reference
        (List.map outcome_fingerprint outcomes))

let test_campaign_bit_identity () =
  (* A small grid with real payload, corruption and fault hooks: the
     strongest determinism claim — per-run seeds and domain-local
     fault state keep every row identical on any pool. *)
  let config =
    Models.Campaign.default ~seed:2008 ~rates:[ 0.0; 0.01 ]
      ~versions:Models.Experiment.[ V1; V6a ] ()
  in
  let reference = Models.Campaign.render config (Models.Campaign.run config) in
  with_pools (fun ~jobs pool ->
      Alcotest.(check string)
        (Printf.sprintf "campaign table jobs=%d" jobs)
        reference
        (Models.Campaign.render config (Models.Campaign.run ~pool config)))

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick test_map_matches_array_map;
          Alcotest.test_case "order under uneven load" `Quick
            test_map_preserves_order_under_load;
          Alcotest.test_case "explicit chunk" `Quick test_explicit_chunk;
          Alcotest.test_case "map telemetry" `Quick test_map_telemetry;
          Alcotest.test_case "exception propagation" `Quick
            test_map_propagates_exception;
          Alcotest.test_case "nested map degrades" `Quick
            test_nested_map_degrades;
          Alcotest.test_case "shutdown semantics" `Quick
            test_map_after_shutdown_raises;
          Alcotest.test_case "parallelism" `Quick test_parallelism;
        ] );
      ( "domain-local state",
        [
          Alcotest.test_case "sink isolation" `Quick
            test_sink_isolation_across_domains;
          Alcotest.test_case "fault hooks" `Quick
            test_fault_hooks_are_domain_local;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "decode" `Quick test_decode_bit_identity;
          Alcotest.test_case "decode_robust" `Quick
            test_decode_robust_bit_identity;
          Alcotest.test_case "nine versions" `Quick
            test_nine_versions_bit_identity;
          Alcotest.test_case "fault campaign" `Quick test_campaign_bit_identity;
        ] );
    ]
