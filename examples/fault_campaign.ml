(* Fault injection and graceful degradation.

   The robustness layer has three parts, demonstrated bottom-up:

   1. a hardened RMI transport — every serialised frame carries a CRC
      word; a corrupted frame costs a timeout, exponential backoff and
      a retransmission, all paid in simulated time;
   2. a seeded fault engine (`Faults.Engine`) that injects bit flips,
      word drops, memory faults and stall jitter through the
      `Osss.Fault_hooks` points — deterministically, so a campaign is
      a reproducible experiment;
   3. a campaign sweep over the decoder models: corrupted entropy
      payloads are decoded with per-code-block concealment and the
      table reports retries, concealments and the PSNR cost.

     dune exec examples/fault_campaign.exe
*)

let clock_hz = 100_000_000

(* -- 1. one corrupted RMI call, recovered by CRC + retry ----------- *)

let hardened_rmi_demo () =
  let kernel = Sim.Kernel.create () in
  let so =
    Osss.Shared_object.create kernel ~name:"coproc"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      (ref ())
  in
  let client = Osss.Shared_object.register_client so ~name:"sw" () in
  let link = Osss.Channel.p2p kernel ~clock_hz ~name:"idwt_link" () in
  Osss.Channel.set_protection link (Osss.Channel.crc_retry ());
  let negate =
    Osss.Channel.rmi_method ~name:"negate" ~args:Osss.Serialisation.int_array
      ~ret:Osss.Serialisation.int_array
      (fun _ a -> Array.map (fun x -> -x) a)
  in
  (* Corrupt the first frame on the wire; the CRC catches it and the
     transport retransmits. *)
  let attempt = ref 0 in
  Osss.Fault_hooks.set_channel (fun ~link:_ words ->
      incr attempt;
      if !attempt = 1 then begin
        let w = Array.copy words in
        w.(Array.length w - 1) <- Int32.lognot w.(Array.length w - 1);
        w
      end
      else words);
  Fun.protect ~finally:Osss.Fault_hooks.clear (fun () ->
      let result = ref [||] in
      Sim.Kernel.spawn kernel (fun () ->
          result := Osss.Channel.rmi_call link so client negate [| 1; 2; 3 |]);
      Sim.Kernel.run kernel;
      let s = Osss.Channel.stats link in
      Printf.printf
        "hardened RMI: result [|%s|], %d CRC error(s), %d retry(ies), \
         recovery cost %.3f us\n\n"
        (String.concat "; "
           (Array.to_list (Array.map string_of_int !result)))
        s.Osss.Channel.crc_errors s.Osss.Channel.retries
        (Sim.Sim_time.to_float_ms s.Osss.Channel.retry_time *. 1000.0))

(* -- 2. the engine replays the same faults for the same seed ------- *)

let determinism_demo () =
  let counters seed =
    let engine =
      Faults.Engine.create ~seed (Faults.Engine.channel_only 0.3)
    in
    Faults.Engine.with_engine engine (fun () ->
        let hook = Option.get (Osss.Fault_hooks.channel ()) in
        for i = 0 to 99 do
          ignore (hook ~link:"demo" (Array.make 16 (Int32.of_int i)))
        done);
    Format.asprintf "%a" Faults.Engine.pp_counters
      (Faults.Engine.counters engine)
  in
  Printf.printf "engine, seed 1:       %s\n" (counters 1);
  Printf.printf "engine, seed 1 again: %s\n" (counters 1);
  Printf.printf "engine, seed 2:       %s\n\n" (counters 2)

(* -- 3. resilience table over the decoder models ------------------- *)

let campaign_demo () =
  let config =
    Models.Campaign.default ~seed:2008
      ~rates:[ 0.0; 0.01; 0.05 ]
      ~versions:[ Models.Experiment.V1; Models.Experiment.V6a ]
      ()
  in
  print_string (Models.Campaign.render config (Models.Campaign.run config))

let () =
  hardened_rmi_demo ();
  determinism_demo ();
  campaign_demo ()
