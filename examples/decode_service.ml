(* The decode service end to end: build a small codestream corpus,
   serve a seeded open-loop workload through each overload policy, and
   export the scheduler timeline of the last run as a Chrome trace.

     dune exec examples/decode_service.exe

   Every number printed is deterministic: scheduling runs on a
   simulated clock driven by work counts, so the same seeds produce
   the same report on any machine at any worker count. *)

let () =
  let corpus =
    Array.init 3 (fun i ->
        Models.Workload.codestream ~seed:(2008 + i) Jpeg2000.Codestream.Lossless)
  in
  let spec =
    match Serve.Request.parse_spec "open:n=96,rate=4000,seed=42" with
    | Ok spec -> spec
    | Error e -> failwith e
  in
  Format.printf "corpus: %d codestreams, workload %s@.@."
    (Array.length corpus)
    (Serve.Request.spec_to_string spec);
  (* The same overload, three answers: refuse, shed, or lower the
     resolution. The cache and seeds are identical across runs, so
     the policies are directly comparable. *)
  List.iter
    (fun policy ->
      let config =
        {
          Serve.Service.default_config with
          Serve.Service.queue_capacity = 8;
          overload = policy;
        }
      in
      let service = Serve.Service.create ~config corpus in
      let report =
        Par.Pool.with_jobs 2 (fun pool -> Serve.Service.run ~pool service spec)
      in
      Format.printf "--- policy %s ---@.%a@.@."
        (Serve.Service.overload_to_string policy)
        Serve.Service.pp_report report)
    [ Serve.Service.Reject; Serve.Service.Drop_oldest; Serve.Service.Degrade ];
  (* One more run with telemetry on: queue spans, request spans and
     queue-depth counters land in a Chrome trace. *)
  let service = Serve.Service.create corpus in
  let sink, report =
    Telemetry.Sink.with_sink (fun () -> Serve.Service.run service spec)
  in
  let trace = Filename.temp_file "decode_service" ".trace.json" in
  Telemetry.Chrome.save trace (Telemetry.Sink.events sink);
  Format.printf "timeline: %d events -> %s@."
    (Telemetry.Sink.event_count sink)
    trace;
  Format.printf "replayable report digest: %s@." report.Serve.Service.pixels_digest
