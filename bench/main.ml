(* Benchmark harness.

   One Bechamel test per paper artefact — regenerating Figure 1, the
   two halves of Table 1, and the Table 2 synthesis comparison — plus
   substrate micro-benchmarks (simulation kernel, MQ coder, DWT,
   Tier-1) and the DESIGN.md ablations (Shared-Object arbitration
   policy, bus burst length).

   After the measurements the harness prints the regenerated
   artefacts themselves, so `dune exec bench/main.exe` both times the
   reproduction and emits the paper's rows. It also writes
   BENCH_results.json (per-benchmark ns/run plus the Table 1 rows) for
   machine consumption; `--quick` shrinks the measurement budget and
   skips the ablations so CI can afford a smoke run. *)

open Bechamel
open Toolkit

let quick = Array.exists (String.equal "--quick") Sys.argv

(* [--jobs N] sets the domain count of the parallel-scaling rows
   (default 4). Speedup needs real cores: on a single-CPU host the
   jobsN rows mostly measure the multicore-GC overhead. *)
let jobs =
  let invalid what =
    Printf.eprintf "bench: --jobs must be an integer >= 1 (got %s)\n" what;
    exit 2
  in
  let rec find i =
    if i >= Array.length Sys.argv then 4
    else if String.equal Sys.argv.(i) "--jobs" then
      if i + 1 >= Array.length Sys.argv then invalid "nothing"
      else
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n >= 1 -> n
        | Some n -> invalid (string_of_int n)
        | None -> invalid (Printf.sprintf "%S" Sys.argv.(i + 1))
    else find (i + 1)
  in
  find 1

let par_pool = Par.Pool.of_jobs jobs

(* Fixed-width pools behind the pinned scaling rows (j2k_decode_jobs2,
   serve_warm_32req_jobs4). Reuse [par_pool] when --jobs already is
   that width so a row never exists twice under one name. *)
let pool2 = if jobs = 2 then par_pool else Par.Pool.of_jobs 2
let pool4 = if jobs = 4 then par_pool else Par.Pool.of_jobs 4

let lossless = Jpeg2000.Codestream.Lossless
let lossy = Jpeg2000.Codestream.Lossy

(* -- benchmarked actions -------------------------------------------- *)

let run_app_models mode () =
  List.iter
    (fun v -> ignore (Models.Experiment.run ~payload:false v mode))
    Models.Experiment.[ V1; V2; V3; V4; V5 ]

let run_vta_models mode () =
  List.iter
    (fun v -> ignore (Models.Experiment.run ~payload:false v mode))
    Models.Experiment.[ V6a; V6b; V7a; V7b ]

let run_fig1 () = ignore (Models.Tables.figure1 ~payload:false ())

let run_table2 () = ignore (Models.Tables.table2_rows ())

let kernel_ping_pong () =
  (* Two processes exchanging 1000 events through a mailbox: the DES
     kernel ablation (effect-handler processes). *)
  let k = Sim.Kernel.create () in
  let mb = Sim.Mailbox.create k ~capacity:4 () in
  Sim.Kernel.spawn k (fun () ->
      for i = 1 to 1000 do
        Sim.Mailbox.put mb i
      done);
  Sim.Kernel.spawn k (fun () ->
      for _ = 1 to 1000 do
        ignore (Sim.Mailbox.get mb)
      done);
  Sim.Kernel.run k

let kernel_ping_pong_traced () =
  (* Same workload with a telemetry sink installed: the difference to
     kernel_ping_pong_1k is the per-hook cost of enabled telemetry. *)
  let _sink, () = Telemetry.Sink.with_sink kernel_ping_pong in
  ()

let mq_payload =
  let state = ref 12345 in
  Array.init 20_000 (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (!state lsr 7) land 1)

let mq_roundtrip () =
  let ctx = Jpeg2000.Mq.context () in
  let enc = Jpeg2000.Mq.encoder () in
  Array.iter (Jpeg2000.Mq.encode enc ctx) mq_payload;
  let data = Jpeg2000.Mq.flush enc in
  let ctx' = Jpeg2000.Mq.context () in
  let dec = Jpeg2000.Mq.decoder data in
  Array.iter (fun _ -> ignore (Jpeg2000.Mq.decode dec ctx')) mq_payload

let dwt_plane =
  let p = Jpeg2000.Image.create_plane ~width:128 ~height:128 in
  Array.iteri
    (fun i _ -> p.Jpeg2000.Image.data.(i) <- ((i * 37) mod 511) - 255)
    p.Jpeg2000.Image.data;
  p

let dwt53_roundtrip () =
  let p =
    { dwt_plane with Jpeg2000.Image.data = Array.copy dwt_plane.Jpeg2000.Image.data }
  in
  Jpeg2000.Dwt53.forward_plane p ~levels:3;
  Jpeg2000.Dwt53.inverse_plane p ~levels:3

let t1_block =
  let state = ref 99 in
  Array.init (32 * 32) (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      if !state mod 5 = 0 then (!state mod 255) - 127 else 0)

let t1_roundtrip () =
  let planes, data =
    Jpeg2000.T1.encode_block ~orientation:Jpeg2000.Subband.HL ~w:32 ~h:32 t1_block
  in
  ignore
    (Jpeg2000.T1.decode_block ~orientation:Jpeg2000.Subband.HL ~w:32 ~h:32 ~planes
       data)

(* The pre-LUT reference context formation: the packed hot path's
   baseline — the delta between this row and t1_block_32x32 is the
   per-block gain of the flag-packed coder. *)
let t1_roundtrip_ref () =
  let planes, data =
    Jpeg2000.T1.encode_block ~lut:false ~orientation:Jpeg2000.Subband.HL ~w:32
      ~h:32 t1_block
  in
  ignore
    (Jpeg2000.T1.decode_block ~lut:false ~orientation:Jpeg2000.Subband.HL ~w:32
       ~h:32 ~planes data)

(* -- parallel scaling rows ------------------------------------------ *)

let j2k_stream = Models.Workload.codestream lossless

let j2k_decode pool () = ignore (Jpeg2000.Decoder.decode ~pool j2k_stream)

(* Same decode under an installed sink: the delta to j2k_decode_jobs1
   is what enabling the profiler costs on the decode path (reported as
   profile_overhead_decode in BENCH_results.json). *)
let j2k_decode_profiled pool () =
  let _sink, () =
    Telemetry.Sink.with_sink (fun () ->
        ignore (Jpeg2000.Decoder.decode ~pool j2k_stream))
  in
  ()

(* -- decode service rows --------------------------------------------- *)

let serve_spec =
  match Serve.Request.parse_spec "open:n=32,rate=1000,seed=11" with
  | Ok spec -> spec
  | Error e -> failwith e

(* Cold: cache disabled, every request pays the full decode. Warm:
   one long-lived service whose cache stays populated across
   iterations — the delta is the cache-hit path's real (wall-clock)
   speedup, reported as cache_hit_speedup in BENCH_results.json. *)
let serve_cold_service =
  Serve.Service.create
    ~config:{ Serve.Service.default_config with Serve.Service.cache_capacity = 0 }
    [| j2k_stream |]

let serve_warm_service = Serve.Service.create [| j2k_stream |]
let serve_run service () = ignore (Serve.Service.run service serve_spec)

(* The warm serving path on a 4-domain pool: the batch scheduler's
   coalesced Pool.map decodes staged jobs in parallel. A dedicated
   service so cache warmth is not shared with the sequential warm
   row. *)
let serve_warm_service_jobs4 = Serve.Service.create [| j2k_stream |]

let serve_run_pool pool service () =
  ignore (Serve.Service.run ~pool service serve_spec)

(* Streaming-ingest rows: the same service fed chunk-by-chunk on the
   virtual clock. Clean delivery prices the reassembly/readiness
   machinery alone; the faulty row adds loss + stall jitter and so
   pays for deadline flushes through the concealment decoder. *)
let serve_ingest_spec =
  match Serve.Request.parse_spec "open:n=24,rate=600,seed=11,deadline=8" with
  | Ok spec -> spec
  | Error e -> failwith e

let ingest_faulty_profile = "chunk=256,loss=0.05,stall=0.2,stall_us=2000"

let ingest_config profile =
  match Faults.Ingest.parse_spec profile with
  | Ok ing -> { Serve.Service.default_config with Serve.Service.ingest = Some ing }
  | Error e -> failwith e

let serve_ingest_clean_service =
  Serve.Service.create ~config:(ingest_config "") [| j2k_stream |]

let serve_ingest_faulty_service =
  Serve.Service.create ~config:(ingest_config ingest_faulty_profile) [| j2k_stream |]

let serve_ingest_run service () =
  ignore (Serve.Service.run service serve_ingest_spec)

(* -- fleet rows ------------------------------------------------------- *)

(* Balancer hot path alone: owner lookups for 10k digests against a
   16-replica ring and against the same ring after one remove and one
   add — prices the routing without any decoding. *)
let fleet_ring_digests =
  Array.init 10_000 (fun i -> Faults.Rng.hash64 0x5eedL (Int64.of_int i))

let fleet_ring_16 = Fleet.Ring.create (List.init 16 Fun.id)
let fleet_ring_15 = Fleet.Ring.remove fleet_ring_16 7
let fleet_ring_17 = Fleet.Ring.add fleet_ring_16 16

let fleet_ring_lookups () =
  Array.iter
    (fun d ->
      ignore (Fleet.Ring.owner fleet_ring_16 d);
      ignore (Fleet.Ring.owner fleet_ring_15 d);
      ignore (Fleet.Ring.owner fleet_ring_17 d))
    fleet_ring_digests

(* One whole fleet run per iteration: four replicas with deliberately
   small L1s over the shared L2. Replica state lives per [Fleet.run],
   so reusing the fleet value across iterations is safe. *)
let fleet_corpus =
  Array.init 4 (fun i -> Models.Workload.codestream ~seed:(41 + i) lossless)

let fleet_spec =
  match Serve.Request.parse_spec "open:n=32,rate=1200,seed=11,deadline=30" with
  | Ok spec -> spec
  | Error e -> failwith e

let fleet_service_config =
  { Serve.Service.default_config with Serve.Service.cache_capacity = 8 }

let fleet_4r = Fleet.create ~service:fleet_service_config fleet_corpus
let fleet_run pool () = ignore (Fleet.run ~pool fleet_4r fleet_spec)

let sweep_9v pool () =
  ignore
    (Models.Experiment.run_many ~payload:false ~pool
       Models.Experiment.all_versions lossless)

let ablation_policy policy () =
  let w = Models.Workload.make ~payload:false lossy in
  ignore
    (Models.Vta_models.run_custom ~so_policy:policy ~version:"7a" ~sw_tasks:4
       ~idwt_p2p:false w)

let ablation_burst words () =
  let w = Models.Workload.make ~payload:false lossy in
  ignore
    (Models.Vta_models.run_custom ~bus_max_burst:words ~version:"7a" ~sw_tasks:4
       ~idwt_p2p:false w)

let artefact_tests =
  [
    Test.make ~name:"fig1_profile" (Staged.stage run_fig1);
    Test.make ~name:"table1_app_lossless" (Staged.stage (run_app_models lossless));
    Test.make ~name:"table1_app_lossy" (Staged.stage (run_app_models lossy));
    Test.make ~name:"table1_vta_lossless" (Staged.stage (run_vta_models lossless));
    Test.make ~name:"table1_vta_lossy" (Staged.stage (run_vta_models lossy));
    Test.make ~name:"table2_synthesis" (Staged.stage run_table2);
  ]

(* The jobs1 rows are always pinned; the --jobs width adds its derived
   rows only when it differs from a pinned width, so no name ever
   appears twice (Bechamel keys rows by name). *)
let substrate_tests =
  [
    Test.make ~name:"kernel_ping_pong_1k" (Staged.stage kernel_ping_pong);
    Test.make ~name:"kernel_ping_pong_1k_traced"
      (Staged.stage kernel_ping_pong_traced);
    Test.make ~name:"mq_roundtrip_20kbit" (Staged.stage mq_roundtrip);
    Test.make ~name:"dwt53_128x128_l3" (Staged.stage dwt53_roundtrip);
    Test.make ~name:"t1_block_32x32" (Staged.stage t1_roundtrip);
    Test.make ~name:"t1_block_32x32_ref" (Staged.stage t1_roundtrip_ref);
    Test.make ~name:"j2k_decode_jobs1"
      (Staged.stage (j2k_decode Par.Pool.sequential));
    Test.make ~name:"j2k_decode_jobs1_profiled"
      (Staged.stage (j2k_decode_profiled Par.Pool.sequential));
    Test.make ~name:"j2k_decode_jobs2" (Staged.stage (j2k_decode pool2));
    Test.make ~name:"sweep_9v_jobs1" (Staged.stage (sweep_9v Par.Pool.sequential));
    Test.make ~name:"serve_cold_32req" (Staged.stage (serve_run serve_cold_service));
    Test.make ~name:"serve_warm_32req" (Staged.stage (serve_run serve_warm_service));
    Test.make ~name:"serve_warm_32req_jobs4"
      (Staged.stage (serve_run_pool pool4 serve_warm_service_jobs4));
    Test.make ~name:"serve_ingest_clean_24req"
      (Staged.stage (serve_ingest_run serve_ingest_clean_service));
    Test.make ~name:"serve_ingest_faulty_24req"
      (Staged.stage (serve_ingest_run serve_ingest_faulty_service));
    Test.make ~name:"fleet_ring_10k_lookups" (Staged.stage fleet_ring_lookups);
    Test.make ~name:"fleet_32req_4r_jobs1"
      (Staged.stage (fleet_run Par.Pool.sequential));
    Test.make ~name:"fleet_32req_4r_jobs4" (Staged.stage (fleet_run pool4));
  ]
  @ (if jobs = 1 || jobs = 2 then []
     else
       [
         Test.make
           ~name:(Printf.sprintf "j2k_decode_jobs%d" jobs)
           (Staged.stage (j2k_decode par_pool));
       ])
  @
  if jobs = 1 then []
  else
    [
      Test.make
        ~name:(Printf.sprintf "sweep_9v_jobs%d" jobs)
        (Staged.stage (sweep_9v par_pool));
    ]

let ablation_tests =
  [
    Test.make ~name:"ablate_policy_fcfs"
      (Staged.stage (ablation_policy Osss.Arbiter.Fcfs));
    Test.make ~name:"ablate_policy_round_robin"
      (Staged.stage (ablation_policy Osss.Arbiter.Round_robin));
    Test.make ~name:"ablate_policy_priority"
      (Staged.stage (ablation_policy Osss.Arbiter.Static_priority));
    Test.make ~name:"ablate_burst_8" (Staged.stage (ablation_burst 8));
    Test.make ~name:"ablate_burst_64" (Staged.stage (ablation_burst 64));
  ]

let tests =
  Test.make_grouped ~name:"repro"
    (if quick then substrate_tests
     else artefact_tests @ substrate_tests @ ablation_tests)

(* Each row is measured as the median of [measurement_passes]
   independent OLS estimates, after one throwaway warm-up pass. A
   single estimate is at the mercy of whatever the host did during
   that one quota window — the traced ping-pong row has measured
   {e faster} than the untraced one on single estimates — and a gate
   comparing two such numbers passes or fails on noise. The warm-up
   absorbs first-touch effects (lazy code, allocator growth, cache
   fills shared services accumulate) so pass 1 measures the same
   steady state as pass 3. *)
let measurement_passes = 3

let benchmark () =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let quota = if quick then Time.second 0.1 else Time.second 1.0 in
  let cfg =
    Benchmark.cfg ~limit:(if quick then 10 else 50) ~quota ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let warm_cfg = Benchmark.cfg ~limit:1 ~quota:(Time.second 0.01) ~kde:None () in
  ignore (Benchmark.all warm_cfg instances tests);
  List.init measurement_passes (fun _ ->
      let raw = Benchmark.all cfg instances tests in
      List.map (fun instance -> Analyze.all ols instance raw) instances)

let pass_rows results =
  List.concat_map
    (fun tbl ->
      Hashtbl.fold
        (fun name result acc ->
          let value =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> est
            | Some _ | None -> Float.nan
          in
          (name, value) :: acc)
        tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))
    results

let median values =
  match
    List.sort Float.compare
      (List.filter (fun v -> not (Float.is_nan v)) values)
  with
  | [] -> Float.nan
  | sorted -> List.nth sorted (List.length sorted / 2)

(* (benchmark name, median ns per run) rows behind both the text table
   and the JSON artefact. *)
let bench_rows passes =
  match List.map pass_rows passes with
  | [] -> []
  | first :: _ as per_pass ->
    List.map
      (fun (name, _) ->
        (name, median (List.filter_map (List.assoc_opt name) per_pass)))
      first

(* OLS estimate of the row whose (grouped) name ends with [suffix]. *)
let row_ns rows suffix =
  List.find_map
    (fun (name, ns) ->
      if
        String.length name >= String.length suffix
        && String.sub name
             (String.length name - String.length suffix)
             (String.length suffix)
           = suffix
        && not (Float.is_nan ns)
      then Some ns
      else None)
    rows

(* Regression gate on the traced-kernel hot path: after the label
   interning in Sim.Kernel, an installed sink may cost at most 25%
   on the ping-pong microbenchmark. Returns true on breach. *)
let traced_overhead_limit = 1.25

let traced_overhead_gate rows =
  match
    (row_ns rows "kernel_ping_pong_1k", row_ns rows "kernel_ping_pong_1k_traced")
  with
  | Some plain, Some traced when plain > 0.0 ->
    let ratio = traced /. plain in
    let breach = ratio > traced_overhead_limit in
    Printf.printf "\ntraced-kernel overhead gate: %.3fx (limit %.2fx) - %s\n"
      ratio traced_overhead_limit
      (if breach then "FAIL" else "ok");
    breach
  | _ ->
    Printf.printf "\ntraced-kernel overhead gate: rows missing - skipped\n";
    false

(* -- parallel-scaling gate -------------------------------------------

   The point of the flat-plane decode and the work-stealing pool is
   that domains stop serialising on the minor collector; this gate
   makes CI fail if that win regresses. Enforced only when the run is
   at the pinned width (--jobs 4) AND the host actually has that many
   cores — on fewer cores the jobsN rows mostly measure multicore-GC
   overhead and a wall-clock speedup is not physically available, so
   the gate reports its numbers but does not fail. *)
let scaling_gate_jobs = 4
let scaling_decode_speedup_min = 2.5
let scaling_sweep_ratio_max = 1.05

type scaling = {
  sc_cores : int;
  sc_enforced : bool;
  sc_skip_reason : string option;
      (* why the gate is advisory; [None] exactly when enforced *)
  sc_decode_speedup : float option; (* jobs1 / jobsN *)
  sc_sweep_ratio : float option; (* jobsN / jobs1 *)
}

let scaling_measure rows =
  let ratio num den =
    match (row_ns rows num, row_ns rows den) with
    | Some n, Some d when d > 0.0 -> Some (n /. d)
    | _ -> None
  in
  let jn name = Printf.sprintf "%s_jobs%d" name jobs in
  let cores = Domain.recommended_domain_count () in
  let skip_reason =
    if jobs <> scaling_gate_jobs then
      Some (Printf.sprintf "jobs=%d, gate pinned to --jobs %d" jobs scaling_gate_jobs)
    else if cores < jobs then Some (Printf.sprintf "cores=%d < %d" cores jobs)
    else None
  in
  {
    sc_cores = cores;
    sc_enforced = skip_reason = None;
    sc_skip_reason = skip_reason;
    sc_decode_speedup = ratio "j2k_decode_jobs1" (jn "j2k_decode");
    sc_sweep_ratio = ratio (jn "sweep_9v") "sweep_9v_jobs1";
  }

(* Returns true on an enforced breach. *)
let scaling_gate sc =
  let pp_opt = function
    | Some v -> Printf.sprintf "%.3fx" v
    | None -> "n/a"
  in
  let decode_breach =
    match sc.sc_decode_speedup with
    | Some s -> s < scaling_decode_speedup_min
    | None -> jobs = scaling_gate_jobs (* required rows missing *)
  in
  let sweep_breach =
    match sc.sc_sweep_ratio with
    | Some r -> r > scaling_sweep_ratio_max
    | None -> jobs = scaling_gate_jobs
  in
  let breach = sc.sc_enforced && (decode_breach || sweep_breach) in
  Printf.printf
    "parallel-scaling gate (jobs=%d, cores=%d): decode speedup %s (min \
     %.2fx), sweep ratio %s (max %.2fx) - %s\n"
    jobs sc.sc_cores
    (pp_opt sc.sc_decode_speedup)
    scaling_decode_speedup_min
    (pp_opt sc.sc_sweep_ratio)
    scaling_sweep_ratio_max
    (if breach then "FAIL"
     else if sc.sc_enforced then "ok"
     else
       Printf.sprintf "not enforced (%s)"
         (Option.value sc.sc_skip_reason ~default:"?"));
  breach

let print_bench_results rows =
  Printf.printf "Benchmark (wall-clock per regeneration, OLS estimate):\n";
  List.iter
    (fun (name, ns) -> Printf.printf "  %-42s %12.3f ms\n" name (ns /. 1e6))
    rows

let write_results_json path sc rows =
  let open Telemetry.Json in
  let scaling_json =
    let opt = function Some v -> Float v | None -> Null in
    Obj
      [
        ("jobs", Int jobs);
        ("cores", Int sc.sc_cores);
        ("decode_speedup", opt sc.sc_decode_speedup);
        ("sweep_ratio", opt sc.sc_sweep_ratio);
        ("decode_speedup_min", Float scaling_decode_speedup_min);
        ("sweep_ratio_max", Float scaling_sweep_ratio_max);
        ("enforced", Bool sc.sc_enforced);
        ( "skip_reason",
          match sc.sc_skip_reason with Some r -> Str r | None -> Null );
      ]
  in
  let bench_json =
    List.map
      (fun (name, ns) ->
        Obj
          [
            ("name", Str name);
            ("ns_per_run", if Float.is_nan ns then Null else Float ns);
          ])
      rows
  in
  let lossless_rows, lossy_rows =
    Models.Tables.table1_results ~payload:false ()
  in
  let table1_json rows =
    List.map (fun o -> Models.Outcome.to_json o) rows
  in
  (* Service-level rows: simulated throughput/p99 from one seeded run
     (deterministic), plus the measured wall-clock ratio of the cold
     and warm Bechamel rows above. *)
  let serve_report =
    Serve.Service.run (Serve.Service.create [| j2k_stream |]) serve_spec
  in
  (* Fresh service so the simulated ingest numbers don't depend on how
     many Bechamel iterations warmed the shared caches above. *)
  let ingest_report =
    Serve.Service.run
      (Serve.Service.create ~config:(ingest_config ingest_faulty_profile)
         [| j2k_stream |])
      serve_ingest_spec
  in
  let ingest_json =
    match ingest_report.Serve.Service.ingest with
    | None -> Null
    | Some i ->
      Obj
        [
          ("spec", Str i.Serve.Service.ing_spec);
          ("chunks_lost", Int i.Serve.Service.ing_chunks_lost);
          ("flushed", Int i.Serve.Service.ing_flushed);
          ("flush_failed", Int i.Serve.Service.ing_flush_failed);
          ( "flush_concealed_tiles",
            Int i.Serve.Service.ing_flush_concealed_tiles );
          ( "flush_psnr_db",
            if Float.is_finite i.Serve.Service.ing_flush_psnr_db then
              Float i.Serve.Service.ing_flush_psnr_db
            else Str "inf" );
        ]
  in
  let row_ns = row_ns rows in
  let cache_hit_speedup =
    match (row_ns "serve_cold_32req", row_ns "serve_warm_32req") with
    | Some cold, Some warm when warm > 0.0 -> Float (cold /. warm)
    | _ -> Null
  in
  let profile_overhead_decode =
    match (row_ns "j2k_decode_jobs1", row_ns "j2k_decode_jobs1_profiled") with
    | Some plain, Some profiled when plain > 0.0 -> Float (profiled /. plain)
    | _ -> Null
  in
  let traced_kernel_overhead =
    match
      (row_ns "kernel_ping_pong_1k", row_ns "kernel_ping_pong_1k_traced")
    with
    | Some plain, Some traced when plain > 0.0 -> Float (traced /. plain)
    | _ -> Null
  in
  (* Deterministic cost tree of the seeded serve run: the top self-time
     stages are virtual-time sums, identical on every host. *)
  let profile_json =
    let sink, _ =
      Telemetry.Sink.with_sink (fun () ->
          ignore
            (Serve.Service.run (Serve.Service.create [| j2k_stream |]) serve_spec))
    in
    let prof = Telemetry.Profile.of_events (Telemetry.Sink.events sink) in
    Obj
      [
        ( "top_self",
          List
            (List.map
               (fun (path, self) ->
                 Obj [ ("path", Str path); ("self_ps", Int self) ])
               (Telemetry.Profile.top_self ~n:3 prof)) );
        ("total_ps", Int (Telemetry.Profile.total_ps prof));
        ("profile_overhead_decode", profile_overhead_decode);
        ("traced_kernel_overhead", traced_kernel_overhead);
      ]
  in
  (* Synthesis rows: LUT/FF with and without the value-analysis
     optimiser (installed at startup) plus the wall time of one full
     synthesise call per core. *)
  let area_json (a : Rtl.Area.report) =
    Obj
      [
        ("flip_flops", Int a.Rtl.Area.flip_flops);
        ("luts", Int a.Rtl.Area.luts);
      ]
  in
  let synthesis_json =
    List.map
      (fun (name, hir) ->
        let t0 = Sys.time () in
        match Fossy.Synthesis.synthesise hir with
        | Error _ -> Obj [ ("core", Str name); ("error", Bool true) ]
        | Ok r ->
          let wall_ms = (Sys.time () -. t0) *. 1000.0 in
          Obj
            [
              ("core", Str name);
              ("optimised", area_json r.Fossy.Synthesis.area);
              ("unoptimised", area_json r.Fossy.Synthesis.unopt_area);
              ( "lut_delta_pct",
                Float
                  (Rtl.Area.delta_pct
                     ~baseline:r.Fossy.Synthesis.unopt_area.Rtl.Area.luts
                     r.Fossy.Synthesis.area.Rtl.Area.luts) );
              ( "ff_delta_pct",
                Float
                  (Rtl.Area.delta_pct
                     ~baseline:r.Fossy.Synthesis.unopt_area.Rtl.Area.flip_flops
                     r.Fossy.Synthesis.area.Rtl.Area.flip_flops) );
              ("synthesis_wall_ms", Float wall_ms);
            ])
      [
        ("idwt53", Models.Idwt_cores.idwt53_systemc);
        ("idwt97", Models.Idwt_cores.idwt97_systemc);
      ]
  in
  (* Fleet-scaling curves: all numbers are virtual-clock sums from the
     deterministic sweep, so this object is byte-identical on every
     host and at every --jobs. *)
  let fleet_rows = Models.Campaign.run_fleet ~pool:par_pool () in
  let fleet_curve =
    List
      (List.map
         (fun (r : Models.Campaign.fleet_row) ->
           let rep = r.Models.Campaign.fl_report in
           Obj
             [
               ("replicas", Int r.Models.Campaign.fl_replicas);
               ("l2", Int r.Models.Campaign.fl_l2);
               ("throughput_rps", Float rep.Fleet.throughput_rps);
               ("p50_ms", Float rep.Fleet.latency.Serve.Service.p50_ms);
               ("p99_ms", Float rep.Fleet.latency.Serve.Service.p99_ms);
               ("slo_misses", Int rep.Fleet.slo_misses);
               ("slo_miss_rate", Float rep.Fleet.slo_miss_rate);
               ("rejected", Int rep.Fleet.rejected);
               ("spilled", Int rep.Fleet.spilled);
               ("l1_hit_rate", Float rep.Fleet.l1.Fleet.hit_rate);
               ( "l2_hit_rate",
                 match rep.Fleet.l2 with
                 | None -> Null
                 | Some l -> Float l.Fleet.l2_tier.Fleet.hit_rate );
             ])
         fleet_rows)
  in
  (* Locality workload: a 4-tile L1 cannot hold even one stream's 16
     tiles, so re-requested tiles are only ever warm in the shared
     tier — the combined (L1 or L2) hit ratio with the L2 enabled must
     beat the L1-only baseline. *)
  let fleet_locality_spec =
    match Serve.Request.parse_spec "open:n=96,rate=800,seed=7" with
    | Ok spec -> spec
    | Error e -> failwith e
  in
  let locality_report l2 =
    let config = { Fleet.default_config with Fleet.l2_capacity = l2 } in
    let fleet =
      Fleet.create ~config
        ~service:
          { Serve.Service.default_config with Serve.Service.cache_capacity = 4 }
        fleet_corpus
    in
    Fleet.run ~pool:par_pool fleet fleet_locality_spec
  in
  let combined_hit_ratio (rep : Fleet.report) =
    let lookups = rep.Fleet.l1.Fleet.hits + rep.Fleet.l1.Fleet.misses in
    let hits =
      rep.Fleet.l1.Fleet.hits
      +
      match rep.Fleet.l2 with
      | Some l -> l.Fleet.l2_tier.Fleet.hits
      | None -> 0
    in
    if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups
  in
  let locality_base = locality_report 0 in
  let locality_warm = locality_report 256 in
  let fleet_locality =
    Obj
      [
        ("workload", Str locality_base.Fleet.workload);
        ("l1_capacity", Int 4);
        ("l2_capacity", Int 256);
        ("l1_only_hit_ratio", Float (combined_hit_ratio locality_base));
        ("with_l2_hit_ratio", Float (combined_hit_ratio locality_warm));
        ( "l2_hit_rate",
          match locality_warm.Fleet.l2 with
          | Some l -> Float l.Fleet.l2_tier.Fleet.hit_rate
          | None -> Null );
        ( "improved",
          Bool
            (combined_hit_ratio locality_warm
            > combined_hit_ratio locality_base) );
      ]
  in
  save path
    (Obj
       [
         ("quick", Bool quick);
         ("jobs", Int jobs);
         ("scaling", scaling_json);
         ("benchmarks", List bench_json);
         ( "serve",
           Obj
             [
               ("workload", Str serve_report.Serve.Service.workload);
               ( "serve_throughput_rps",
                 Float serve_report.Serve.Service.throughput_rps );
               ( "serve_p99_ms",
                 Float serve_report.Serve.Service.latency.Serve.Service.p99_ms );
               ( "cache_hit_rate",
                 Float serve_report.Serve.Service.cache_hit_rate );
               ("cache_hit_speedup", cache_hit_speedup);
               ("ingest", ingest_json);
             ] );
         ( "fleet",
           Obj [ ("sweep", fleet_curve); ("locality", fleet_locality) ] );
         ("profile", profile_json);
         ("synthesis", List synthesis_json);
         ( "table1",
           Obj
             [
               ("lossless", List (table1_json lossless_rows));
               ("lossy", List (table1_json lossy_rows));
             ] );
       ]);
  Printf.printf "\nwrote %s\n" path

(* -- ablation result tables (values, not just timings) ---------------- *)

let print_ablations () =
  Printf.printf
    "\nAblation - HW/SW Shared-Object arbitration policy (version 7a, lossy):\n";
  Printf.printf "  %-18s %14s %12s\n" "policy" "decode [ms]" "IDWT [ms]";
  List.iter
    (fun (name, policy) ->
      let w = Models.Workload.make ~payload:false lossy in
      let r =
        Models.Vta_models.run_custom ~so_policy:policy ~version:"7a" ~sw_tasks:4
          ~idwt_p2p:false w
      in
      Printf.printf "  %-18s %14.1f %12.2f\n" name r.Models.Outcome.decode_ms
        r.Models.Outcome.idwt_ms)
    [
      ("fcfs", Osss.Arbiter.Fcfs);
      ("round-robin", Osss.Arbiter.Round_robin);
      ("static-priority", Osss.Arbiter.Static_priority);
    ];
  Printf.printf "\nAblation - OPB burst length (version 7a, lossy):\n";
  Printf.printf "  %-18s %14s %12s\n" "burst [words]" "decode [ms]" "IDWT [ms]";
  List.iter
    (fun words ->
      let w = Models.Workload.make ~payload:false lossy in
      let r =
        Models.Vta_models.run_custom ~bus_max_burst:words ~version:"7a"
          ~sw_tasks:4 ~idwt_p2p:false w
      in
      Printf.printf "  %-18d %14.1f %12.2f\n" words r.Models.Outcome.decode_ms
        r.Models.Outcome.idwt_ms)
    [ 4; 8; 16; 32; 64 ];
  Printf.printf
    "\nAblation - operator sharing mode on the FOSSY netlists (same netlist,\n\
     Shared = cross-state operator folding, Flat = every instance kept):\n";
  Printf.printf "  %-10s %10s %10s %12s %12s\n" "core" "LUT shared" "LUT flat"
    "fmax shared" "fmax flat";
  List.iter
    (fun (name, hir) ->
      match Fossy.Synthesis.synthesise hir with
      | Error _ -> ()
      | Ok r ->
        let s = r.Fossy.Synthesis.summary in
        let shared = Rtl.Area.estimate ~sharing:Rtl.Area.Shared s in
        let flat = Rtl.Area.estimate ~sharing:Rtl.Area.Flat s in
        Printf.printf "  %-10s %10d %10d %9.1f MHz %9.1f MHz\n" name
          shared.Rtl.Area.luts flat.Rtl.Area.luts
          (Rtl.Timing_model.estimate_mhz ~sharing:Rtl.Area.Shared s)
          (Rtl.Timing_model.estimate_mhz ~sharing:Rtl.Area.Flat s))
    [
      ("idwt53", Models.Idwt_cores.idwt53_systemc);
      ("idwt97", Models.Idwt_cores.idwt97_systemc);
    ]

let () =
  Analysis.Lint.install ();
  let passes = benchmark () in
  let rows = bench_rows passes in
  print_bench_results rows;
  let overhead_breach = traced_overhead_gate rows in
  let sc = scaling_measure rows in
  let scaling_breach = scaling_gate sc in
  write_results_json "BENCH_results.json" sc rows;
  if not quick then begin
    print_newline ();
    print_string (Models.Tables.figure1 ~payload:false ());
    print_string (Models.Tables.table1 ~payload:false ());
    print_newline ();
    print_string (Models.Tables.table2 ());
    print_string (Models.Tables.relations_report ~payload:false ());
    print_ablations ()
  end;
  if pool2 != par_pool then Par.Pool.shutdown pool2;
  if pool4 != par_pool then Par.Pool.shutdown pool4;
  Par.Pool.shutdown par_pool;
  if overhead_breach || scaling_breach then exit 1
